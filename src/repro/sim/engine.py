"""The discrete-time simulation engine.

One :class:`Simulation` reproduces what the prototype does in hardware
(Section 6): every second the IPDU meters per-server demand; the hControl
plan in force routes servers between utility/solar, the SC pool and the
battery pool; surpluses charge the buffers; shortfalls shed
least-recently-used servers.  Every ``slot_seconds`` the policy is asked
for a fresh :class:`SlotPlan` and told how the last slot went.

Power-flow rules per tick (all at the server side of the converter):

1. The scheduler moves the hungriest servers off the source feed until the
   source draw fits the budget; buffered servers split SC/battery by the
   plan's R_lambda.
2. Pools discharge their assigned draw (divided by the converter
   efficiency).  If a pool cannot keep up and the plan allows fallback,
   the other pool covers the shortfall — the paper's "the other will take
   over the entire load immediately via power switches".
3. Any remaining shortfall sheds LRU servers from the failing pool's
   cohort (Section 7.2).
4. With no deficit, headroom restarts offline servers first, then charges
   the pools in the plan's ``charge_order``.

Fault injection: an optional :class:`~repro.faults.FaultInjector` hooks
the loop at three points — the tick prologue (degradation steps, budget
sag, pool availability), :meth:`Simulation._observe` (sensor corruption
and availability flags on the slot observation), and
:meth:`Simulation._serve_buffers` / :meth:`Simulation._charge_pools`
(unreachable pools neither serve, back up, nor charge).  Every hook is
gated on ``injector is not None``, so a run without an injector is
bit-identical to one from before the subsystem existed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import ClusterConfig, ControllerConfig, SimulationConfig
from ..core.peaks import analyze_slot, expected_peak_duration_s
from ..core.policies.base import Policy, SlotObservation, SlotPlan, SlotResult
from ..core.scheduler import LoadScheduler
from ..errors import SimulationError
from ..power.components import IPDU, RelayPosition, SwitchFabric
from ..server.cluster import ServerCluster
from ..server.server import PowerSource
from ..workloads.base import ClusterTrace, PowerTrace
from .buffers import HybridBuffers
from .metrics import MetricsAccumulator, finalize_metrics
from .results import PerfReport, RunResult, SlotRecord

_EPSILON = 1e-9

# Lead-acid calendar life bounds the throughput estimate (shelf aging
# dominates once cycling wear is light).
_CALENDAR_LIFE_YEARS = 15.0


class Simulation:
    """One (workload, scheme, buffer sizing) simulation run."""

    def __init__(self,
                 trace: ClusterTrace,
                 policy: Policy,
                 buffers: HybridBuffers,
                 cluster_config: Optional[ClusterConfig] = None,
                 controller_config: Optional[ControllerConfig] = None,
                 sim_config: Optional[SimulationConfig] = None,
                 supply: Optional[PowerTrace] = None,
                 renewable: bool = False,
                 profiler=None,
                 injector=None) -> None:
        self.trace = trace
        self.policy = policy
        self.buffers = buffers
        #: Optional tick profiler (``repro.perf.TickProfiler``); injected
        #: rather than imported so the deterministic sim package never
        #: touches wall clocks itself.
        self.profiler = profiler
        #: Optional fault injector (``repro.faults.FaultInjector``); also
        #: injected rather than imported — the engine only consults its
        #: hook protocol, keeping ``sim`` free of a ``faults`` dependency.
        self.injector = injector
        self.cluster_config = cluster_config or ClusterConfig()
        self.controller_config = controller_config or ControllerConfig()
        self.sim_config = sim_config or SimulationConfig()
        self.supply = supply
        self.renewable = renewable

        if trace.num_servers != self.cluster_config.num_servers:
            raise SimulationError(
                f"trace has {trace.num_servers} servers but the cluster "
                f"has {self.cluster_config.num_servers}")
        if supply is not None:
            if abs(supply.dt_s - trace.dt_s) > 1e-9:
                raise SimulationError("supply and demand dt must match")
            if len(supply) < trace.num_samples:
                raise SimulationError("supply trace shorter than demand")
        if abs(self.sim_config.tick_seconds - trace.dt_s) > 1e-9:
            raise SimulationError(
                "trace dt must equal the engine tick length")

        self.cluster = ServerCluster(self.cluster_config)
        self.scheduler = LoadScheduler()
        self.fabric = SwitchFabric(self.cluster_config.num_servers)
        # The IPDU meters per-server draw every tick, exactly as the
        # prototype's unit reports over SNMP (Section 6); the history is
        # bounded to one control slot.
        slot_ticks = max(1, int(round(self.controller_config.slot_seconds
                                      / self.sim_config.tick_seconds)))
        self.ipdu = IPDU(self.cluster_config.num_servers,
                         history_limit=slot_ticks)

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the whole trace and return the result."""
        dt = self.sim_config.tick_seconds
        controller = self.controller_config
        slot_ticks = max(1, int(round(controller.slot_seconds / dt)))
        num_ticks = self.trace.num_samples

        accumulator = MetricsAccumulator()
        slot_records: List[SlotRecord] = []
        slot_demand: List[float] = []
        slot_downtime_base = 0.0
        last_analysis = None
        plan: Optional[SlotPlan] = None
        observation: Optional[SlotObservation] = None

        # Loop-invariant lookups, hoisted out of the tick loop.
        cluster = self.cluster
        buffers = self.buffers
        scheduler = self.scheduler
        ipdu = self.ipdu
        values = self.trace.values_w
        supply = self.supply
        fixed_budget = self.cluster_config.utility_budget_w
        has_sc = buffers.sc is not None
        prof = self.profiler
        injector = self.injector
        # Pool reachability under injected power-path faults; stays True
        # for the whole run when no injector is present.
        sc_ok = True
        ba_ok = True
        last_downtime_s = 0.0

        # Per-tick cluster demand totals, computed in one vectorized pass.
        # An axis-0 reduce accumulates rows sequentially, which matches
        # np.sum over a per-tick column exactly for <= 8 servers (numpy's
        # pairwise summation only reorders beyond 8 terms); wider
        # clusters keep the historical per-tick reduction.
        if values.shape[0] <= 8:
            # axis=-2 is the server axis of the (servers, ticks) trace;
            # counting from the end keeps it the server axis when a
            # leading scenario-batch axis lands (ROADMAP item 2).
            tick_totals: Optional[List[float]] = (
                np.add.reduce(values, axis=-2).tolist())
        else:
            tick_totals = None

        # The relay plan is re-applied only when it (or any server state)
        # changed since the last apply; SwitchFabric counts transitions,
        # so re-applying an identical plan is pure overhead.
        last_sources: Optional[Tuple[PowerSource, ...]] = None
        last_version = -1
        relay_applies = 0
        relay_skips = 0

        self.policy.reset()

        for tick in range(num_ticks):
            now = tick * dt
            budget = supply[tick] if supply is not None else fixed_budget
            if prof is not None:
                prof.begin_tick()

            # --- fault prologue -----------------------------------------
            if injector is not None:
                injector.begin_tick(now, dt, buffers)
                budget = injector.transform_budget(budget)
                sc_ok = injector.sc_available
                ba_ok = injector.battery_available

            # --- slot boundary ------------------------------------------
            if tick % slot_ticks == 0:
                if plan is not None and observation is not None:
                    last_analysis = self._close_slot(
                        observation, plan, slot_demand, dt,
                        slot_downtime_base, slot_records)
                slot_demand = []
                slot_downtime_base = cluster.total_downtime_s()
                observation = self._observe(
                    tick // slot_ticks, now, budget, last_analysis)
                plan = self.policy.begin_slot(observation)
                if prof is not None:
                    prof.mark("slot")

            assert plan is not None  # set on the first iteration

            # --- demand & assignment --------------------------------------
            # The trace is validated at construction (non-negative, right
            # shape), so the per-tick view skips draws_w's re-validation.
            raw = values[:, tick]
            draws = cluster.draw_array(raw)
            assignment = scheduler.assign(
                draws, cluster.powered_mask(), budget, plan.r_lambda,
                use_sc=plan.use_sc and has_sc and sc_ok,
                use_battery=plan.use_battery and ba_ok)
            if prof is not None:
                prof.mark("schedule")

            sources = assignment.sources
            version = cluster.version
            if sources != last_sources or version != last_version:
                cluster.assign_sources(sources)
                self._actuate_relays(sources)
                last_sources = sources
                last_version = version
                relay_applies += 1
            else:
                relay_skips += 1

            utility_draw = assignment.utility_draw_w
            num_off = cluster.num_off
            if num_off:
                unserved_w = float(sum(raw[i] for i in cluster.off_indices()))
            else:
                unserved_w = 0.0

            # Forced capping: no pool could absorb the excess.
            over = utility_draw - budget
            if over > _EPSILON:
                shed = cluster.shed_lru(
                    over, draws, from_sources=(PowerSource.UTILITY,))
                freed = sum(float(draws[s.server_id]) for s in shed)
                utility_draw -= freed
                unserved_w += freed
                accumulator.shed_events += len(shed)
                last_version = -1
            if prof is not None:
                prof.mark("actuate")

            # --- buffer service -------------------------------------------
            buffers.begin_tick()
            served_from_buffers, shortfall_unserved, loss_w = (
                self._serve_buffers(assignment, plan, draws, dt, accumulator,
                                    sc_ok=sc_ok, ba_ok=ba_ok))
            unserved_w += shortfall_unserved
            if prof is not None:
                prof.mark("buffers")

            # --- charging / restarts --------------------------------------
            charge_w = 0.0
            deficit = assignment.n_buffered > 0
            if not deficit:
                headroom = budget - utility_draw
                if headroom > _EPSILON:
                    # Re-read: this tick's shedding may have turned
                    # servers off after the snapshot above.
                    if cluster.num_off:
                        restarted = cluster.restart_offline(headroom)
                        for server in restarted:
                            headroom -= max(
                                server.draw_w(0.0),
                                server.config.idle_power_w)
                    charge_w = self._charge_pools(
                        plan.charge_order, max(0.0, headroom), dt,
                        sc_ok=sc_ok, ba_ok=ba_ok)
            buffers.settle(dt)
            if prof is not None:
                prof.mark("charge")

            # --- bookkeeping ----------------------------------------------
            cluster.tick(dt, now, raw)
            if injector is not None:
                # Attribute newly-accrued downtime to the fault classes
                # in force this tick (cheap: only runs under injection).
                downtime_total = cluster.total_downtime_s()
                injector.attribute_downtime(downtime_total - last_downtime_s)
                last_downtime_s = downtime_total
            ipdu.record_array(now, draws, dt)
            if tick_totals is not None:
                slot_demand.append(tick_totals[tick])
            else:
                slot_demand.append(float(np.sum(np.ascontiguousarray(raw))))  # repro: noqa[RPR503] wide-cluster fallback keeps the historical per-tick summation order bit-exact
            accumulator.record_tick(
                dt=dt,
                served_w=utility_draw + served_from_buffers,
                unserved_w=unserved_w,
                utility_w=utility_draw,
                charge_w=charge_w,
                generation_w=supply[tick] if supply is not None else 0.0,
                conversion_loss_w=loss_w,
                deficit=deficit,
            )
            if prof is not None:
                prof.mark("bookkeeping")

        if plan is not None and observation is not None:
            self._close_slot(observation, plan, slot_demand, dt,
                             slot_downtime_base, slot_records)

        perf: Optional[PerfReport] = None
        if prof is not None:
            prof.count("relay_applies", relay_applies)
            prof.count("relay_skips", relay_skips)
            prof.count("scheduler_calls", scheduler.calls)
            prof.count("scheduler_within_budget", scheduler.within_budget_hits)
            prof.count("scheduler_order_reuses", scheduler.order_reuses)
            perf = prof.report()

        return self._finalize(accumulator, slot_records, num_ticks * dt,
                              perf)

    # ------------------------------------------------------------------
    # Tick helpers
    # ------------------------------------------------------------------

    def _budget_at(self, tick: int) -> float:
        if self.supply is not None:
            return self.supply[tick]
        return self.cluster_config.utility_budget_w

    def _generation_at(self, tick: int) -> float:
        if self.supply is not None:
            return self.supply[tick]
        return 0.0

    def _actuate_relays(self, sources: Tuple[PowerSource, ...]) -> None:
        positions = []
        for source in sources:
            if source is PowerSource.UTILITY:
                positions.append(RelayPosition.UTILITY)
            elif source in (PowerSource.SUPERCAP, PowerSource.BATTERY):
                positions.append(RelayPosition.STORAGE)
            else:
                positions.append(RelayPosition.OPEN)
        self.fabric.apply(positions)

    def _serve_buffers(self, assignment, plan: SlotPlan, draws,
                       dt: float, accumulator: MetricsAccumulator,
                       sc_ok: bool = True, ba_ok: bool = True,
                       ) -> Tuple[float, float, float]:
        """Discharge pools for the buffered servers.

        ``sc_ok`` / ``ba_ok`` carry injected power-path faults: an
        unreachable pool cannot serve its own cohort (the scheduler never
        assigns one) and — enforced here — cannot take over the other
        pool's shortfall either.

        Returns (power served to servers, power unserved after shedding,
        conversion loss).
        """
        eff = self.cluster_config.converter_efficiency
        served = 0.0
        loss = 0.0
        sc_short = 0.0
        ba_short = 0.0

        if assignment.sc_draw_w > _EPSILON:
            result = self.buffers.discharge("sc", assignment.sc_draw_w / eff,
                                            dt)
            delivered = result.achieved_w * eff
            loss += result.achieved_w * (1.0 - eff)
            served += delivered
            sc_short = max(0.0, assignment.sc_draw_w - delivered)
        if assignment.battery_draw_w > _EPSILON:
            result = self.buffers.discharge(
                "battery", assignment.battery_draw_w / eff, dt)
            delivered = result.achieved_w * eff
            loss += result.achieved_w * (1.0 - eff)
            served += delivered
            ba_short = max(0.0, assignment.battery_draw_w - delivered)

        if plan.fallback:
            if sc_short > _EPSILON and ba_ok:
                result = self.buffers.discharge("battery", sc_short / eff, dt)
                delivered = result.achieved_w * eff
                loss += result.achieved_w * (1.0 - eff)
                served += delivered
                sc_short = max(0.0, sc_short - delivered)
            if ba_short > _EPSILON and sc_ok and self.buffers.sc is not None:
                result = self.buffers.discharge("sc", ba_short / eff, dt)
                delivered = result.achieved_w * eff
                loss += result.achieved_w * (1.0 - eff)
                served += delivered
                ba_short = max(0.0, ba_short - delivered)

        # The power a pool did deliver keeps its surviving servers up;
        # only the shortfall's worth of servers browns out and is shed.
        unserved = 0.0
        if sc_short > _EPSILON:
            shed = self.cluster.shed_lru(
                sc_short, draws, from_sources=(PowerSource.SUPERCAP,))
            unserved += sum(float(draws[s.server_id]) for s in shed)
            accumulator.shed_events += len(shed)
        if ba_short > _EPSILON:
            shed = self.cluster.shed_lru(
                ba_short, draws, from_sources=(PowerSource.BATTERY,))
            unserved += sum(float(draws[s.server_id]) for s in shed)
            accumulator.shed_events += len(shed)
        return served, unserved, loss

    def _charge_pools(self, order: Tuple[str, ...], headroom_w: float,
                      dt: float, sc_ok: bool = True,
                      ba_ok: bool = True) -> float:
        """Offer valley surplus to the pools; returns power accepted.

        Pools made unreachable by injected power-path faults are skipped
        — an open-circuited bank can no more absorb surplus than serve.
        """
        accepted = 0.0
        for name in order:
            if headroom_w <= _EPSILON:
                break
            if name == "sc" and (self.buffers.sc is None or not sc_ok):
                continue
            if name == "battery" and not ba_ok:
                continue
            result = self.buffers.charge(name, headroom_w, dt)
            accepted += result.achieved_w
            headroom_w -= result.achieved_w
        return accepted

    # ------------------------------------------------------------------
    # Slot helpers
    # ------------------------------------------------------------------

    def _observe(self, index: int, now: float, budget: float,
                 last_analysis) -> SlotObservation:
        if last_analysis is None:
            last_peak = last_valley = last_duration = 0.0
        else:
            last_peak = last_analysis.peak_w
            last_valley = last_analysis.valley_w
            last_duration = expected_peak_duration_s(last_analysis)
        observation = SlotObservation(
            index=index,
            start_s=now,
            budget_w=budget,
            sc_usable_j=self.buffers.sc_usable_j,
            battery_usable_j=self.buffers.battery_usable_j,
            sc_nominal_j=self.buffers.sc_nominal_j,
            battery_nominal_j=self.buffers.battery_nominal_j,
            last_peak_w=last_peak,
            last_valley_w=last_valley,
            last_peak_duration_s=last_duration,
            num_servers=self.cluster.num_servers,
        )
        if self.injector is not None:
            # The controller sees what its sensors report: telemetry may
            # be perturbed (and flagged), pools may be marked unreachable.
            observation = self.injector.observe(observation)
        return observation

    def _close_slot(self, observation: SlotObservation, plan: SlotPlan,
                    slot_demand: List[float], dt: float,
                    downtime_base: float,
                    slot_records: List[SlotRecord]):
        demand_trace = PowerTrace(np.asarray(slot_demand), dt,
                                  name="slot-demand")
        analysis = analyze_slot(demand_trace, observation.budget_w)
        downtime = self.cluster.total_downtime_s() - downtime_base
        peak_duration_s = expected_peak_duration_s(analysis)
        result = SlotResult(
            observation=observation,
            plan=plan,
            sc_usable_end_j=self.buffers.sc_usable_j,
            battery_usable_end_j=self.buffers.battery_usable_j,
            actual_peak_w=analysis.peak_w,
            actual_valley_w=analysis.valley_w,
            actual_peak_duration_s=peak_duration_s,
            downtime_s=downtime,
        )
        self.policy.end_slot(result)
        slot_records.append(SlotRecord(
            index=observation.index,
            note=plan.note,
            r_lambda=plan.r_lambda,
            peak_w=analysis.peak_w,
            valley_w=analysis.valley_w,
            peak_duration_s=peak_duration_s,
            sc_usable_end_j=self.buffers.sc_usable_j,
            battery_usable_end_j=self.buffers.battery_usable_j,
            downtime_in_slot_s=downtime,
        ))
        return analysis

    # ------------------------------------------------------------------

    def _finalize(self, accumulator: MetricsAccumulator,
                  slot_records: List[SlotRecord],
                  duration_s: float,
                  perf: Optional[PerfReport] = None) -> RunResult:
        report = self.buffers.lifetime_report()
        lifetime_years = min(report.estimated_lifetime_years,
                             _CALENDAR_LIFE_YEARS)
        metrics = finalize_metrics(
            accumulator,
            buffer_in_j=self.buffers.energy_in_j(),
            buffer_out_j=self.buffers.energy_out_j(),
            initial_stored_j=self.buffers.initial_stored_j,
            final_stored_j=self.buffers.total_stored_j,
            downtime_s=self.cluster.total_downtime_s(),
            num_servers=self.cluster.num_servers,
            duration_s=duration_s,
            lifetime_years=lifetime_years,
            equivalent_cycles=report.equivalent_full_cycles,
            total_restarts=self.cluster.total_restarts(),
            restart_energy_j=self.cluster.total_restart_energy_j(),
            relay_switches=self.fabric.total_switches(),
            renewable=self.renewable,
            # Empty buckets collapse to None so an injector that never
            # attributed anything (e.g. the empty schedule) leaves the
            # metrics bit-identical to an injector-free run.
            fault_downtime_s=((self.injector.downtime_by_class() or None)
                              if self.injector is not None else None),
        )
        return RunResult(
            scheme=self.policy.name,
            workload=self.trace.name,
            metrics=metrics,
            lifetime=report,
            slots=tuple(slot_records),
            perf=perf,
        )
