"""Result export: CSV and Markdown reports from simulation runs.

The benchmark harness prints paper-style tables; these helpers produce
machine-readable artifacts for downstream analysis pipelines.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence, Union

from ..errors import SimulationError
from .results import RunResult

PathLike = Union[str, Path]

_COLUMNS = (
    "scheme", "workload", "duration_s", "energy_efficiency",
    "server_downtime_s", "battery_lifetime_years",
    "battery_equivalent_cycles", "reu", "renewable_capture",
    "buffer_energy_in_j", "buffer_energy_out_j", "served_energy_j",
    "unserved_energy_j", "utility_energy_j", "total_restarts",
    "relay_switches",
)


def _row(result: RunResult) -> dict:
    metrics = result.metrics
    return {
        "scheme": result.scheme,
        "workload": result.workload,
        "duration_s": metrics.duration_s,
        "energy_efficiency": metrics.energy_efficiency,
        "server_downtime_s": metrics.server_downtime_s,
        "battery_lifetime_years": metrics.battery_lifetime_years,
        "battery_equivalent_cycles": metrics.battery_equivalent_cycles,
        "reu": metrics.reu if metrics.reu is not None else "",
        "renewable_capture": (metrics.renewable_capture
                              if metrics.renewable_capture is not None
                              else ""),
        "buffer_energy_in_j": metrics.buffer_energy_in_j,
        "buffer_energy_out_j": metrics.buffer_energy_out_j,
        "served_energy_j": metrics.served_energy_j,
        "unserved_energy_j": metrics.unserved_energy_j,
        "utility_energy_j": metrics.utility_energy_j,
        "total_restarts": metrics.total_restarts,
        "relay_switches": metrics.relay_switches,
    }


def results_to_csv(results: Sequence[RunResult], path: PathLike) -> None:
    """Write one CSV row per run."""
    if not results:
        raise SimulationError("no results to export")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_COLUMNS)
        writer.writeheader()
        for result in results:
            writer.writerow(_row(result))


def results_to_markdown(results: Sequence[RunResult],
                        title: str = "Simulation results") -> str:
    """Render runs as a GitHub-flavoured Markdown table."""
    if not results:
        raise SimulationError("no results to render")
    headers = ("scheme", "workload", "EE", "downtime (s)", "lifetime (y)",
               "REU")
    lines = [f"### {title}", "",
             "| " + " | ".join(headers) + " |",
             "|" + "---|" * len(headers)]
    for result in results:
        metrics = result.metrics
        reu = f"{metrics.reu:.3f}" if metrics.reu is not None else "—"
        lines.append(
            f"| {result.scheme} | {result.workload} "
            f"| {metrics.energy_efficiency:.3f} "
            f"| {metrics.server_downtime_s:.0f} "
            f"| {metrics.battery_lifetime_years:.2f} "
            f"| {reu} |")
    return "\n".join(lines)


def comparison_to_markdown(table: Mapping[str, Mapping[str, float]],
                           baseline: str = "BaOnly",
                           title: str = "Scheme comparison") -> str:
    """Render a :func:`repro.sim.compare_schemes` table as Markdown."""
    if not table:
        raise SimulationError("empty comparison table")
    headers = ("scheme", "EE", "EE vs base", "downtime vs base",
               "lifetime vs base")
    lines = [f"### {title} (baseline: {baseline})", "",
             "| " + " | ".join(headers) + " |",
             "|" + "---|" * len(headers)]
    for scheme, row in table.items():
        lines.append(
            f"| {scheme} "
            f"| {row.get('energy_efficiency', float('nan')):.3f} "
            f"| {row.get('energy_efficiency_vs_baseline', 1.0):.3f} "
            f"| {row.get('server_downtime_vs_baseline', 1.0):.3f} "
            f"| {row.get('battery_lifetime_vs_baseline', 1.0):.3f} |")
    return "\n".join(lines)
