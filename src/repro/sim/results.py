"""Run results, serialization, and cross-scheme comparison helpers.

Results are portable: :func:`result_to_dict` / :func:`result_from_dict`
round-trip every field exactly (floats survive via JSON's shortest-repr
encoding), and :func:`dump_results` / :func:`load_results` store whole
result sets as JSON lines — the format the runner's on-disk cache and
any cross-machine result exchange use.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..perf.stats import PerfReport
from ..storage.lifetime import LifetimeReport
from .metrics import RunMetrics

#: Bumped whenever the serialized layout changes incompatibly; stored in
#: every JSON line so stale cache entries are rejected, not misparsed.
#: Version 2 added ``RunMetrics.fault_downtime_s``.
RESULT_FORMAT_VERSION = 2


@dataclass(frozen=True)
class SlotRecord:
    """One control slot's planning and outcome (for analysis/debugging)."""

    index: int
    note: str
    r_lambda: float
    peak_w: float
    valley_w: float
    peak_duration_s: float
    sc_usable_end_j: float
    battery_usable_end_j: float
    downtime_in_slot_s: float


@dataclass(frozen=True)
class RunResult:
    """Everything one simulation run produced."""

    scheme: str
    workload: str
    metrics: RunMetrics
    lifetime: LifetimeReport
    slots: Tuple[SlotRecord, ...]
    #: Wall-clock measurement of this run, present only when the engine
    #: was profiled.  Excluded from equality and serialization — two runs
    #: that differ only in timing are the same result.
    perf: Optional[PerfReport] = field(default=None, compare=False,
                                       repr=False)

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline numbers (for tabular reports)."""
        m = self.metrics
        row = {
            "energy_efficiency": m.energy_efficiency,
            "server_downtime_s": m.server_downtime_s,
            "battery_lifetime_years": m.battery_lifetime_years,
            "unserved_energy_j": m.unserved_energy_j,
        }
        if m.reu is not None:
            row["reu"] = m.reu
        return row

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to plain JSON-compatible types (see module docs)."""
        return result_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        return result_from_dict(payload)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Serialize one :class:`RunResult` to JSON-compatible types."""
    return {
        "format": RESULT_FORMAT_VERSION,
        "scheme": result.scheme,
        "workload": result.workload,
        "metrics": dataclasses.asdict(result.metrics),
        "lifetime": dataclasses.asdict(result.lifetime),
        "slots": [dataclasses.asdict(slot) for slot in result.slots],
    }


def result_from_dict(payload: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` serialized by :func:`result_to_dict`.

    Raises:
        ValueError: On a missing/unknown format tag or malformed payload.
    """
    version = payload.get("format")
    if version != RESULT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format {version!r} "
            f"(expected {RESULT_FORMAT_VERSION})")
    try:
        return RunResult(
            scheme=payload["scheme"],
            workload=payload["workload"],
            metrics=RunMetrics(**payload["metrics"]),
            lifetime=LifetimeReport(**payload["lifetime"]),
            slots=tuple(SlotRecord(**slot) for slot in payload["slots"]),
        )
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed RunResult payload: {error}") from error


def to_json_line(result: RunResult) -> str:
    """One compact JSON line for a result (JSONL record)."""
    return json.dumps(result_to_dict(result), sort_keys=True,
                      separators=(",", ":"))


def from_json_line(line: str) -> RunResult:
    """Parse one JSONL record back into a :class:`RunResult`."""
    return result_from_dict(json.loads(line))


def dump_results(results: Iterable[RunResult],
                 path: Union[str, Path]) -> int:
    """Write results as JSON lines; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as stream:
        for result in results:
            stream.write(to_json_line(result))
            stream.write("\n")
            count += 1
    return count


def load_results(path: Union[str, Path]) -> List[RunResult]:
    """Read a JSONL file written by :func:`dump_results`."""
    results: List[RunResult] = []
    with Path(path).open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                results.append(from_json_line(line))
    return results


def average_metric(results: Sequence[RunResult],
                   getter: Callable[[RunMetrics], Optional[float]]) -> float:
    """Mean of one metric across runs (ignores None values)."""
    values = [v for v in (getter(r.metrics) for r in results)
              if v is not None]
    if not values:
        raise ValueError("no values to average")
    return sum(values) / len(values)


def compare_schemes(results: Sequence[RunResult],
                    baseline: str = "BaOnly"
                    ) -> Dict[str, Dict[str, float]]:
    """Per-scheme means of the Figure 12 metrics, normalized to a baseline.

    Returns a mapping ``scheme -> row`` where each row carries the raw
    means plus ``*_vs_baseline`` ratios.  Downtime ratios below 1.0 mean
    *less* downtime than the baseline; lifetime ratios above 1.0 mean a
    longer-lived battery — matching how the paper phrases its headline
    numbers ("reduce system downtime by 41%", "extend UPS lifetime 4.7X").
    """
    by_scheme: Dict[str, List[RunResult]] = {}
    for result in results:
        by_scheme.setdefault(result.scheme, []).append(result)
    if baseline not in by_scheme:
        raise ValueError(f"baseline scheme {baseline!r} missing from results")

    def mean(scheme: str,
             getter: Callable[[RunMetrics], float]) -> float:
        values = [getter(r.metrics) for r in by_scheme[scheme]]
        return sum(values) / len(values)

    def mean_optional(scheme: str,
                      getter: Callable[[RunMetrics], Optional[float]],
                      ) -> Optional[float]:
        values = [v for v in (getter(r.metrics) for r in by_scheme[scheme])
                  if v is not None]
        return sum(values) / len(values) if values else None

    table: Dict[str, Dict[str, float]] = {}
    base_ee = mean(baseline, lambda m: m.energy_efficiency)
    base_down = mean(baseline, lambda m: m.server_downtime_s)
    base_life = mean(baseline, lambda m: m.battery_lifetime_years)
    base_reu = mean_optional(baseline, lambda m: m.reu)
    base_capture = mean_optional(baseline, lambda m: m.renewable_capture)

    for scheme, runs in by_scheme.items():
        row: Dict[str, float] = {
            "energy_efficiency": mean(scheme, lambda m: m.energy_efficiency),
            "server_downtime_s": mean(scheme, lambda m: m.server_downtime_s),
            "battery_lifetime_years": mean(
                scheme, lambda m: m.battery_lifetime_years),
            "runs": float(len(runs)),
        }
        reu = mean_optional(scheme, lambda m: m.reu)
        if reu is not None:
            row["reu"] = reu
        capture = mean_optional(scheme, lambda m: m.renewable_capture)
        if capture is not None:
            row["renewable_capture"] = capture
            if base_capture:
                row["renewable_capture_vs_baseline"] = (
                    capture / base_capture)
        if base_ee:
            row["energy_efficiency_vs_baseline"] = (
                row["energy_efficiency"] / base_ee)
        if base_down and base_down > 0:
            row["server_downtime_vs_baseline"] = (
                row["server_downtime_s"] / base_down)
        if base_life and base_life > 0:
            row["battery_lifetime_vs_baseline"] = (
                row["battery_lifetime_years"] / base_life)
        if reu is not None and base_reu:
            row["reu_vs_baseline"] = reu / base_reu
        table[scheme] = row
    return table
