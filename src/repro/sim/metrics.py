"""Run metrics: the four headline measurements of Figure 12.

* **Energy efficiency (EE)** — terminal energy the buffers delivered to
  load divided by the energy it cost to (re)fill them: charge energy plus
  any net drawdown of the initial store.  Computed "based on detailed
  charging/discharging logs" exactly as Section 3.1 describes.
* **Server downtime (SD)** — aggregate seconds of unavailability across
  servers (Section 7.2).
* **Battery lifetime** — Ah-throughput model estimate (Section 7.3).
* **Renewable energy utilization (REU)** — (energy stored into buffers +
  renewable energy consumed directly by load) / total generation
  (Section 2.2), defined only for renewable-supplied runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class MetricsAccumulator:
    """Per-tick counters folded into final :class:`RunMetrics`."""

    served_energy_j: float = 0.0
    unserved_energy_j: float = 0.0
    utility_energy_j: float = 0.0
    charge_energy_j: float = 0.0
    generation_energy_j: float = 0.0
    conversion_loss_j: float = 0.0
    deficit_ticks: int = 0
    total_ticks: int = 0
    shed_events: int = 0

    def record_tick(self, dt: float, served_w: float, unserved_w: float,
                    utility_w: float, charge_w: float,
                    generation_w: float, conversion_loss_w: float,
                    deficit: bool) -> None:
        """Fold one simulation tick into the counters."""
        self.served_energy_j += served_w * dt
        self.unserved_energy_j += unserved_w * dt
        self.utility_energy_j += utility_w * dt
        self.charge_energy_j += charge_w * dt
        self.generation_energy_j += generation_w * dt
        self.conversion_loss_j += conversion_loss_w * dt
        self.total_ticks += 1
        if deficit:
            self.deficit_ticks += 1


@dataclass(frozen=True)
class RunMetrics:
    """Final metrics of one simulation run.

    Attributes:
        energy_efficiency: Buffer energy-out over energy-cost (see module
            docstring); 1.0 when the buffers were never used.
        server_downtime_s: Aggregate downtime across servers.
        downtime_fraction: Downtime normalized by servers x wall time.
        battery_lifetime_years: Ah-throughput lifetime estimate.
        battery_equivalent_cycles: Effective full cycles consumed.
        reu: Renewable energy utilization, or None for utility-fed runs.
        renewable_capture: Fraction of the renewable *surplus* (generation
            beyond direct load consumption) absorbed into the buffers.
            This isolates the charging-rate dynamics Section 2.2 is about:
            the battery's charge-current ceiling wastes deep valleys that
            SCs absorb whole.  None for utility-fed runs.
        buffer_energy_in_j / buffer_energy_out_j: Terminal buffer flows.
        served_energy_j / unserved_energy_j: Load-side accounting.
        utility_energy_j: Energy drawn from the source by servers.
        generation_energy_j: Total source energy offered (renewable runs).
        deficit_time_fraction: Fraction of ticks with demand over budget.
        total_restarts: Server off/on cycles.
        restart_energy_j: Energy wasted by those cycles.
        relay_switches: Relay actuations over the run.
        duration_s: Simulated wall time.
        fault_downtime_s: Per-fault-class downtime attribution for runs
            with an injected :class:`~repro.faults.FaultSchedule`: maps
            fault kind (plus ``"baseline"`` for downtime accrued with no
            fault active) to seconds of downtime charged to it; buckets
            sum to ``server_downtime_s``.  None for fault-free runs and
            for injected runs that accrued no downtime at all (so a
            zero-fault injection stays bit-identical to no injection).
    """

    energy_efficiency: float
    server_downtime_s: float
    downtime_fraction: float
    battery_lifetime_years: float
    battery_equivalent_cycles: float
    reu: Optional[float]
    renewable_capture: Optional[float]
    buffer_energy_in_j: float
    buffer_energy_out_j: float
    served_energy_j: float
    unserved_energy_j: float
    utility_energy_j: float
    generation_energy_j: float
    deficit_time_fraction: float
    total_restarts: int
    restart_energy_j: float
    relay_switches: int
    duration_s: float
    fault_downtime_s: Optional[Dict[str, float]] = None


def finalize_metrics(accumulator: MetricsAccumulator,
                     buffer_in_j: float,
                     buffer_out_j: float,
                     initial_stored_j: float,
                     final_stored_j: float,
                     downtime_s: float,
                     num_servers: int,
                     duration_s: float,
                     lifetime_years: float,
                     equivalent_cycles: float,
                     total_restarts: int,
                     restart_energy_j: float,
                     relay_switches: int,
                     renewable: bool,
                     fault_downtime_s: Optional[Dict[str, float]] = None,
                     ) -> RunMetrics:
    """Combine tick counters and device telemetry into final metrics."""
    drawdown = max(0.0, initial_stored_j - final_stored_j)
    energy_cost = buffer_in_j + drawdown
    if energy_cost > 1e-9:
        efficiency = min(1.0, buffer_out_j / energy_cost)
    else:
        efficiency = 1.0

    reu: Optional[float] = None
    capture: Optional[float] = None
    if renewable and accumulator.generation_energy_j > 1e-9:
        used = accumulator.utility_energy_j + accumulator.charge_energy_j
        reu = min(1.0, used / accumulator.generation_energy_j)
        surplus = (accumulator.generation_energy_j
                   - accumulator.utility_energy_j)
        if surplus > 1e-9:
            capture = min(1.0, accumulator.charge_energy_j / surplus)

    # A zero-length run or an empty cluster has no server-seconds to be
    # down for: the fraction is 0, not a division by (num_servers * 0).
    if num_servers > 0 and duration_s > 0.0:
        downtime_fraction = downtime_s / (num_servers * duration_s)
    else:
        downtime_fraction = 0.0
    return RunMetrics(
        energy_efficiency=efficiency,
        server_downtime_s=downtime_s,
        downtime_fraction=downtime_fraction,
        battery_lifetime_years=lifetime_years,
        battery_equivalent_cycles=equivalent_cycles,
        reu=reu,
        renewable_capture=capture,
        buffer_energy_in_j=buffer_in_j,
        buffer_energy_out_j=buffer_out_j,
        served_energy_j=accumulator.served_energy_j,
        unserved_energy_j=accumulator.unserved_energy_j,
        utility_energy_j=accumulator.utility_energy_j,
        generation_energy_j=accumulator.generation_energy_j,
        deficit_time_fraction=(accumulator.deficit_ticks
                               / max(1, accumulator.total_ticks)),
        total_restarts=total_restarts,
        restart_energy_j=restart_energy_j,
        relay_switches=relay_switches,
        duration_s=duration_s,
        fault_downtime_s=fault_downtime_s,
    )
