"""The hybrid buffer pair a simulation run operates on.

Bundles the SC pool, the battery pool, and the battery's lifetime model,
and guarantees the timing discipline the device models need: every pool
advances by exactly one operation (charge, discharge, or rest) per tick,
so KiBaM recovery happens whenever the battery is idle.
"""

from __future__ import annotations

from typing import Optional

from ..config import HybridBufferConfig
from ..errors import ConfigurationError, SimulationError
from ..storage.bank import DeviceBank
from ..storage.battery import LeadAcidBattery
from ..storage.device import EnergyStorageDevice, FlowResult
from ..storage.lifetime import AhThroughputLifetimeModel, LifetimeReport
from ..storage.supercap import Supercapacitor


class HybridBuffers:
    """SC + battery pools with equal-capacity construction.

    Args:
        config: Total capacity and SC share.  With ``include_sc=False``
            the battery pool absorbs the *entire* capacity — the paper's
            equal-total-capacity comparison against BaOnly (Section 7).
        include_sc: Whether an SC pool exists.
        battery_dod / sc_dod: Optional DoD overrides (the Section 7.5
            capacity-planning knob).
    """

    def __init__(self, config: HybridBufferConfig,
                 include_sc: bool = True,
                 battery_dod: Optional[float] = None,
                 sc_dod: Optional[float] = None,
                 battery_modules: int = 1,
                 sc_modules: int = 1) -> None:
        self.config = config
        self.include_sc = include_sc and config.sc_fraction > 0.0
        if battery_modules < 1 or sc_modules < 1:
            raise ConfigurationError("module counts must be >= 1")

        if self.include_sc:
            sc_energy = config.sc_energy_j
            battery_energy = config.battery_energy_j
        else:
            sc_energy = 0.0
            battery_energy = config.total_energy_j
        if battery_energy <= 0:
            raise ConfigurationError("battery pool must hold some energy")

        # The prototype cabinet holds "small and large batteries/SCs
        # connected by relays"; module counts > 1 model the pool as a
        # relay-connected DeviceBank of identical strings/modules.
        battery_config = config.battery.scaled_to_energy(
            battery_energy / battery_modules)
        if battery_modules == 1:
            self.battery: EnergyStorageDevice = LeadAcidBattery(
                battery_config, name="battery-pool")
        else:
            self.battery = DeviceBank(
                [LeadAcidBattery(battery_config, name=f"battery-{i}")
                 for i in range(battery_modules)], name="battery-pool")
        self.sc: Optional[EnergyStorageDevice] = None
        if self.include_sc:
            sc_config = config.supercap.scaled_to_energy(
                sc_energy / sc_modules)
            if sc_modules == 1:
                self.sc = Supercapacitor(sc_config, name="sc-pool")
            else:
                self.sc = DeviceBank(
                    [Supercapacitor(sc_config, name=f"sc-{i}")
                     for i in range(sc_modules)], name="sc-pool")

        if battery_dod is not None:
            self.battery.set_depth_of_discharge(battery_dod)
        if sc_dod is not None and self.sc is not None:
            self.sc.set_depth_of_discharge(sc_dod)

        # The lifetime model tracks the aggregate pool; for banks, it is
        # parameterized by the pool-equivalent single string.
        pool_equivalent = config.battery.scaled_to_energy(battery_energy)
        self.lifetime = AhThroughputLifetimeModel(pool_equivalent)
        self._sc_touched = False
        self._battery_touched = False
        self.initial_stored_j = self.total_stored_j

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def sc_usable_j(self) -> float:
        return self.sc.usable_energy_j if self.sc is not None else 0.0

    @property
    def battery_usable_j(self) -> float:
        return self.battery.usable_energy_j

    @property
    def sc_nominal_j(self) -> float:
        return self.sc.nominal_energy_j if self.sc is not None else 0.0

    @property
    def battery_nominal_j(self) -> float:
        return self.battery.nominal_energy_j

    @property
    def total_stored_j(self) -> float:
        stored = self.battery.stored_energy_j
        if self.sc is not None:
            stored += self.sc.stored_energy_j
        return stored

    def pool(self, name: str) -> Optional[EnergyStorageDevice]:
        """Access a pool by its plan name ("sc" or "battery")."""
        if name == "sc":
            return self.sc
        if name == "battery":
            return self.battery
        raise SimulationError(f"unknown pool {name!r}")

    # ------------------------------------------------------------------
    # Tick protocol
    # ------------------------------------------------------------------

    def begin_tick(self) -> None:
        """Mark the start of a tick (clears per-tick operation flags)."""
        self._sc_touched = False
        self._battery_touched = False

    def discharge(self, name: str, power_w: float, dt: float) -> FlowResult:
        """Discharge one pool; battery discharges feed the lifetime model."""
        if name == "battery":
            self._battery_touched = True
            result = self.battery.discharge(power_w, dt)
            self.lifetime.observe_flow(result, dt, self.battery.soc)
            return result
        device = self.pool(name)
        if device is None:
            raise SimulationError(f"scheme has no {name!r} pool")
        self._sc_touched = True
        return device.discharge(power_w, dt)

    def charge(self, name: str, power_w: float, dt: float) -> FlowResult:
        """Charge one pool."""
        if name == "battery":
            self._battery_touched = True
            result = self.battery.charge(power_w, dt)
            self.lifetime.observe_idle(dt)
            return result
        device = self.pool(name)
        if device is None:
            raise SimulationError(f"scheme has no {name!r} pool")
        self._sc_touched = True
        return device.charge(power_w, dt)

    def settle(self, dt: float) -> None:
        """Rest every pool not operated this tick (recovery happens here)."""
        if not self._battery_touched:
            self.battery.rest(dt)
            self.lifetime.observe_idle(dt)
        if self.sc is not None and not self._sc_touched:
            self.sc.rest(dt)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def lifetime_report(self) -> LifetimeReport:
        return self.lifetime.report()

    def energy_in_j(self) -> float:
        """Terminal energy charged into both pools so far."""
        total = self.battery.telemetry.energy_in_j
        if self.sc is not None:
            total += self.sc.telemetry.energy_in_j
        return total

    def energy_out_j(self) -> float:
        """Terminal energy discharged from both pools so far."""
        total = self.battery.telemetry.energy_out_j
        if self.sc is not None:
            total += self.sc.telemetry.energy_out_j
        return total

    def reset(self) -> None:
        """Refill both pools and clear telemetry and wear."""
        self.battery.reset(1.0)
        if self.sc is not None:
            self.sc.reset(1.0)
        self.lifetime.reset()
        self.initial_stored_j = self.total_stored_j
