"""Abstract energy-storage device protocol shared by batteries and SCs.

A device is a stateful object that exchanges power with the rest of the
system through two operations:

* :meth:`EnergyStorageDevice.discharge` — ask the device to deliver a given
  terminal power for a time step.  The device delivers as much of it as its
  physics allow (state of charge, current limits, voltage floor) and reports
  what actually happened in a :class:`FlowResult`.
* :meth:`EnergyStorageDevice.charge` — offer the device a given terminal
  power; it accepts up to its charge-rate ceiling and capacity headroom.

Both operations are *best effort and truthful*: the caller must inspect the
result rather than assume the request was met.  This mirrors the prototype,
where the hControl observes voltage/current sensors rather than assuming
its commands succeeded.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import clamp, coulombs_to_ah


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one charge or discharge step at the device terminals.

    Attributes:
        requested_w: Power the caller asked for.
        achieved_w: Power actually exchanged at the terminals.
        energy_j: Terminal energy exchanged over the step (achieved_w * dt).
        loss_j: Energy dissipated internally during the step (IR/ESR heating
            plus conversion inefficiency).
        terminal_voltage_v: Voltage at the terminals during the step.
        limited: True when the device could not meet the request.
        current_a: Terminal current during the step (>= 0 for both
            directions; the operation type disambiguates).
    """

    requested_w: float
    achieved_w: float
    energy_j: float
    loss_j: float
    terminal_voltage_v: float
    limited: bool
    current_a: float = 0.0

    @property
    def shortfall_w(self) -> float:
        """Unmet portion of the request (always >= 0)."""
        return max(0.0, self.requested_w - self.achieved_w)


@dataclass
class DeviceTelemetry:
    """Cumulative counters a device maintains for metrics and lifetime.

    The lifetime model (Figure 12c) and the efficiency metric (Figure 12a)
    are both computed from these counters, in the same way the paper derives
    them from "detailed charging/discharging logs".
    """

    energy_in_j: float = 0.0
    energy_out_j: float = 0.0
    loss_j: float = 0.0
    charge_throughput_c: float = 0.0
    discharge_throughput_c: float = 0.0
    peak_discharge_current_a: float = 0.0
    discharge_time_s: float = 0.0
    charge_time_s: float = 0.0
    rest_time_s: float = 0.0
    unmet_requests: int = 0

    @property
    def discharge_throughput_ah(self) -> float:
        """Cumulative discharged charge in amp-hours."""
        return coulombs_to_ah(self.discharge_throughput_c)

    @property
    def round_trip_efficiency(self) -> float:
        """Observed energy-out / energy-in ratio so far.

        Meaningful only over windows that begin and end at the same state
        of charge; :mod:`repro.storage.characterization` constructs such
        windows explicitly.
        """
        if self.energy_in_j <= 0.0:
            return 1.0
        return self.energy_out_j / self.energy_in_j

    def record_discharge(self, result: FlowResult, current_a: float,
                         dt: float) -> None:
        """Fold one discharge step into the counters."""
        self.energy_out_j += result.energy_j
        self.loss_j += result.loss_j
        self.discharge_throughput_c += current_a * dt
        self.peak_discharge_current_a = max(
            self.peak_discharge_current_a, current_a)
        self.discharge_time_s += dt
        if result.limited:
            self.unmet_requests += 1

    def record_charge(self, result: FlowResult, current_a: float,
                      dt: float) -> None:
        """Fold one charge step into the counters."""
        self.energy_in_j += result.energy_j
        self.loss_j += result.loss_j
        self.charge_throughput_c += current_a * dt
        self.charge_time_s += dt

    def record_rest(self, dt: float) -> None:
        """Fold one idle step into the counters."""
        self.rest_time_s += dt


class EnergyStorageDevice(ABC):
    """Common interface for every storage technology in the library."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.telemetry = DeviceTelemetry()
        self._soc_floor = 0.0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def nominal_energy_j(self) -> float:
        """Energy held at 100% state of charge (joules)."""

    @property
    @abstractmethod
    def stored_energy_j(self) -> float:
        """Energy currently stored (joules, >= 0)."""

    @property
    def soc(self) -> float:
        """State of charge as stored / nominal, in [0, 1]."""
        return clamp(self.stored_energy_j / self.nominal_energy_j, 0.0, 1.0)

    @property
    def soc_floor(self) -> float:
        """Controller-imposed SoC floor (1 - depth of discharge)."""
        return self._soc_floor

    def set_depth_of_discharge(self, dod: float) -> None:
        """Restrict usable capacity to the top ``dod`` fraction.

        This is the knob Section 7.5 turns to emulate different installed
        capacities: "Our controller can disable the utilization of batteries
        once it hits its DoD threshold."
        """
        if not 0.0 < dod <= 1.0:
            raise ConfigurationError(f"DoD must lie in (0, 1], got {dod!r}")
        self._soc_floor = 1.0 - dod

    @property
    def usable_energy_j(self) -> float:
        """Stored energy above the DoD floor (what a policy may spend)."""
        floor_j = self._soc_floor * self.nominal_energy_j
        return max(0.0, self.stored_energy_j - floor_j)

    @property
    def headroom_j(self) -> float:
        """Energy the device could still absorb."""
        return max(0.0, self.nominal_energy_j - self.stored_energy_j)

    @property
    def is_depleted(self) -> bool:
        """True when no usable energy remains above the DoD floor."""
        return self.usable_energy_j <= 1e-9

    @property
    def is_full(self) -> bool:
        """True when the device cannot absorb more energy."""
        return self.headroom_j <= 1e-9

    # ------------------------------------------------------------------
    # Electrical interface
    # ------------------------------------------------------------------

    @abstractmethod
    def open_circuit_voltage(self) -> float:
        """Open-circuit terminal voltage at the current state."""

    @abstractmethod
    def max_discharge_power_w(self, dt: float) -> float:
        """Largest terminal power sustainable for the next ``dt`` seconds."""

    @abstractmethod
    def max_charge_power_w(self, dt: float) -> float:
        """Largest terminal power absorbable for the next ``dt`` seconds."""

    @abstractmethod
    def discharge(self, power_w: float, dt: float) -> FlowResult:
        """Deliver up to ``power_w`` at the terminals for ``dt`` seconds."""

    @abstractmethod
    def charge(self, power_w: float, dt: float) -> FlowResult:
        """Absorb up to ``power_w`` at the terminals for ``dt`` seconds."""

    @abstractmethod
    def rest(self, dt: float) -> None:
        """Let the device sit idle for ``dt`` seconds (recovery happens here)."""

    @abstractmethod
    def reset(self, soc: float = 1.0) -> None:
        """Restore the device to ``soc`` and clear telemetry."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _validate_flow_args(self, power_w: float, dt: float) -> None:
        if power_w < 0.0:
            raise ConfigurationError(
                f"{self.name}: power must be non-negative, got {power_w!r}")
        if dt <= 0.0:
            raise ConfigurationError(
                f"{self.name}: dt must be positive, got {dt!r}")

    @staticmethod
    def _noflow(power_w: float, voltage_v: float) -> FlowResult:
        """A zero-exchange result used when a request cannot be served."""
        return FlowResult(
            requested_w=power_w,
            achieved_w=0.0,
            energy_j=0.0,
            loss_j=0.0,
            terminal_voltage_v=voltage_v,
            limited=power_w > 0.0,
            current_a=0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"soc={self.soc:.3f} usable={self.usable_energy_j:.0f}J>")
