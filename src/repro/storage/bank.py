"""Pools of storage devices behaving as one logical device.

The HEB architecture pools "several small and large batteries/SCs connected
by relays" (Figure 11).  :class:`DeviceBank` aggregates member devices into
one logical :class:`EnergyStorageDevice`: power requests are split across
members in proportion to what each can deliver or absorb, which is how a
relay fabric sharing a common bus behaves to first order.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError
from .device import DeviceTelemetry, EnergyStorageDevice, FlowResult

_EPSILON = 1e-12


class DeviceBank(EnergyStorageDevice):
    """A parallel pool of storage devices presented as a single device."""

    def __init__(self, devices: Sequence[EnergyStorageDevice],
                 name: str = "bank") -> None:
        if not devices:
            raise ConfigurationError("a bank needs at least one device")
        super().__init__(name)
        self.devices: List[EnergyStorageDevice] = list(devices)

    # ------------------------------------------------------------------
    # Aggregated state
    # ------------------------------------------------------------------

    @property
    def nominal_energy_j(self) -> float:
        return sum(d.nominal_energy_j for d in self.devices)

    @property
    def stored_energy_j(self) -> float:
        return sum(d.stored_energy_j for d in self.devices)

    @property
    def usable_energy_j(self) -> float:
        # Member devices enforce their own floors; the bank's usable energy
        # is the sum of member usable energies, not a recomputation from an
        # aggregate SoC (members may sit at different states of charge).
        return sum(d.usable_energy_j for d in self.devices)

    @property
    def headroom_j(self) -> float:
        return sum(d.headroom_j for d in self.devices)

    def open_circuit_voltage(self) -> float:
        """Energy-weighted mean of member voltages (telemetry only)."""
        total = self.nominal_energy_j
        return sum(d.open_circuit_voltage() * d.nominal_energy_j
                   for d in self.devices) / total

    def set_depth_of_discharge(self, dod: float) -> None:
        super().set_depth_of_discharge(dod)
        for device in self.devices:
            device.set_depth_of_discharge(dod)

    # ------------------------------------------------------------------
    # Limits
    # ------------------------------------------------------------------

    def max_discharge_power_w(self, dt: float) -> float:
        return sum(d.max_discharge_power_w(dt) for d in self.devices)

    def max_charge_power_w(self, dt: float) -> float:
        return sum(d.max_charge_power_w(dt) for d in self.devices)

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------

    def _split(self, power_w: float, capacities: Sequence[float]) -> List[float]:
        """Split a request across members in proportion to capability."""
        total = sum(capacities)
        if total <= _EPSILON:
            return [0.0] * len(capacities)
        request = min(power_w, total)
        return [request * cap / total for cap in capacities]

    def discharge(self, power_w: float, dt: float) -> FlowResult:
        self._validate_flow_args(power_w, dt)
        capacities = [d.max_discharge_power_w(dt) for d in self.devices]
        shares = self._split(power_w, capacities)
        achieved = energy = loss = 0.0
        current = 0.0
        any_flow = False
        for device, share in zip(self.devices, shares):
            if share <= _EPSILON:
                device.rest(dt)
                continue
            result = device.discharge(share, dt)
            achieved += result.achieved_w
            energy += result.energy_j
            loss += result.loss_j
            current += result.current_a
            any_flow = any_flow or result.achieved_w > 0.0
        result = FlowResult(
            requested_w=power_w,
            achieved_w=achieved,
            energy_j=energy,
            loss_j=loss,
            terminal_voltage_v=self.open_circuit_voltage(),
            limited=achieved < power_w - 1e-6,
            current_a=current,
        )
        self.telemetry.record_discharge(result, current, dt)
        return result

    def charge(self, power_w: float, dt: float) -> FlowResult:
        self._validate_flow_args(power_w, dt)
        capacities = [d.max_charge_power_w(dt) for d in self.devices]
        shares = self._split(power_w, capacities)
        achieved = energy = loss = 0.0
        current = 0.0
        for device, share in zip(self.devices, shares):
            if share <= _EPSILON:
                device.rest(dt)
                continue
            result = device.charge(share, dt)
            achieved += result.achieved_w
            energy += result.energy_j
            loss += result.loss_j
            current += result.current_a
        result = FlowResult(
            requested_w=power_w,
            achieved_w=achieved,
            energy_j=energy,
            loss_j=loss,
            terminal_voltage_v=self.open_circuit_voltage(),
            limited=achieved < power_w - 1e-6,
            current_a=current,
        )
        self.telemetry.record_charge(result, current, dt)
        return result

    def rest(self, dt: float) -> None:
        self._validate_flow_args(0.0, dt)
        for device in self.devices:
            device.rest(dt)
        self.telemetry.record_rest(dt)

    def reset(self, soc: float = 1.0) -> None:
        for device in self.devices:
            device.reset(soc)
        self.telemetry = DeviceTelemetry()
