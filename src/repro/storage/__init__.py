"""Energy-storage substrate: batteries, supercapacitors, banks, lifetime.

This package implements the physical layer the paper's prototype provides
in hardware (Figure 11): lead-acid battery strings, supercapacitor modules,
their charge/discharge physics, and the Ah-throughput lifetime model used
for the Figure 12(c) battery-lifetime results.
"""

from .device import EnergyStorageDevice, FlowResult, DeviceTelemetry
from .kibam import (
    KiBaMCoefficients,
    KiBaMState,
    kibam_coefficients,
    kibam_step,
    kibam_max_discharge_current,
    kibam_max_charge_current,
)
from .battery import LeadAcidBattery
from .supercap import Supercapacitor
from .lifetime import AhThroughputLifetimeModel, LifetimeReport
from .bank import DeviceBank
from .characterization import (
    CharacterizationResult,
    RecoveryResult,
    constant_power_charge,
    constant_power_discharge,
    round_trip_efficiency,
    recovery_experiment,
    discharge_voltage_curve,
)

__all__ = [
    "EnergyStorageDevice",
    "FlowResult",
    "DeviceTelemetry",
    "KiBaMCoefficients",
    "KiBaMState",
    "kibam_coefficients",
    "kibam_step",
    "kibam_max_discharge_current",
    "kibam_max_charge_current",
    "LeadAcidBattery",
    "Supercapacitor",
    "AhThroughputLifetimeModel",
    "LifetimeReport",
    "DeviceBank",
    "CharacterizationResult",
    "RecoveryResult",
    "constant_power_charge",
    "constant_power_discharge",
    "round_trip_efficiency",
    "recovery_experiment",
    "discharge_voltage_curve",
]
