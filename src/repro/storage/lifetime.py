"""Ah-throughput battery lifetime model (Bindner et al., Risø, 2005).

This is the model the paper cites as [49] and uses to "present the
anticipated battery lifetime based on detailed battery usage logs"
(Section 7.3).  The core idea: a battery dies after a fixed total amount of
charge has passed through it, where charge discharged under *stressful*
conditions (high current relative to the rating, or at low state of
charge) counts for more than its face value.

Total life throughput::

    gamma_ah = rated_cycles * rated_dod * capacity_ah

Each observed discharge step contributes ``current * dt * weight`` of
effective throughput, where the weight grows with current stress and
low-SoC stress.  The estimated calendar lifetime is then the observation
window scaled by the inverse of the life fraction consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BatteryConfig
from ..errors import ConfigurationError
from ..units import SECONDS_PER_YEAR, coulombs_to_ah
from .device import FlowResult


@dataclass(frozen=True)
class LifetimeReport:
    """Summary of battery wear over an observation window.

    Attributes:
        effective_throughput_ah: Severity-weighted discharged charge.
        raw_throughput_ah: Unweighted discharged charge.
        life_consumed_fraction: Share of total life throughput consumed.
        equivalent_full_cycles: Effective throughput expressed in full
            rated-DoD cycles.
        estimated_lifetime_years: Calendar lifetime if the observed usage
            pattern continued indefinitely (inf when unused).
        observation_seconds: Length of the observation window.
    """

    effective_throughput_ah: float
    raw_throughput_ah: float
    life_consumed_fraction: float
    equivalent_full_cycles: float
    estimated_lifetime_years: float
    observation_seconds: float


class AhThroughputLifetimeModel:
    """Accumulates severity-weighted Ah throughput for one battery.

    Args:
        config: The battery whose life is being tracked.
        current_stress_exponent: Exponent on (I / I_ref) above the rating
            current; 0 disables current weighting.  The default (0.6) is a
            calibration choice: combined with the throughput reduction from
            offloading to SCs it reproduces the paper's ~4.7x lifetime gap
            between HEB-D and BaOnly (Figure 12c).
        low_soc_stress: Additional weight multiplier applied linearly as SoC
            approaches zero (discharging a nearly empty lead-acid battery is
            disproportionately damaging).
    """

    def __init__(self, config: BatteryConfig,
                 current_stress_exponent: float | None = None,
                 low_soc_stress: float = 1.0) -> None:
        if low_soc_stress < 0.0:
            raise ConfigurationError("low_soc_stress must be >= 0")
        self.config = config
        if current_stress_exponent is None:
            current_stress_exponent = 0.6
        if current_stress_exponent < 0.0:
            raise ConfigurationError("current_stress_exponent must be >= 0")
        self.current_stress_exponent = current_stress_exponent
        self.low_soc_stress = low_soc_stress
        self._effective_throughput_c = 0.0
        self._raw_throughput_c = 0.0
        self._observation_s = 0.0

    @property
    def total_life_throughput_ah(self) -> float:
        """Gamma: rated_cycles * rated_dod * capacity (amp-hours)."""
        cfg = self.config
        return cfg.rated_cycles * cfg.rated_dod * cfg.capacity_ah

    def weight(self, current_a: float, soc: float) -> float:
        """Severity weight for charge discharged at (current, soc)."""
        cfg = self.config
        current_weight = 1.0
        if current_a > cfg.reference_current_a and self.current_stress_exponent:
            ratio = current_a / cfg.reference_current_a
            current_weight = ratio ** self.current_stress_exponent
        soc_weight = 1.0 + self.low_soc_stress * max(0.0, 1.0 - soc)
        return current_weight * soc_weight

    def observe_discharge(self, current_a: float, dt: float,
                          soc: float) -> None:
        """Fold one discharge step into the wear counters."""
        if current_a < 0.0 or dt <= 0.0:
            raise ConfigurationError(
                "observe_discharge needs current >= 0 and dt > 0")
        charge_c = current_a * dt
        self._raw_throughput_c += charge_c
        self._effective_throughput_c += charge_c * self.weight(current_a, soc)
        self._observation_s += dt

    def observe_flow(self, result: FlowResult, dt: float, soc: float) -> None:
        """Convenience wrapper taking a discharge :class:`FlowResult`."""
        self.observe_discharge(result.current_a, dt, soc)

    def observe_idle(self, dt: float) -> None:
        """Extend the observation window without wear (rest or charging)."""
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        self._observation_s += dt

    @property
    def life_consumed_fraction(self) -> float:
        """Fraction of total life throughput consumed so far."""
        return (coulombs_to_ah(self._effective_throughput_c)
                / self.total_life_throughput_ah)

    def report(self) -> LifetimeReport:
        """Snapshot the current wear state."""
        effective_ah = coulombs_to_ah(self._effective_throughput_c)
        raw_ah = coulombs_to_ah(self._raw_throughput_c)
        consumed = self.life_consumed_fraction
        cycle_ah = self.config.rated_dod * self.config.capacity_ah
        if consumed > 0.0 and self._observation_s > 0.0:
            lifetime_s = self._observation_s / consumed
            lifetime_years = lifetime_s / SECONDS_PER_YEAR
        else:
            lifetime_years = float("inf")
        return LifetimeReport(
            effective_throughput_ah=effective_ah,
            raw_throughput_ah=raw_ah,
            life_consumed_fraction=consumed,
            equivalent_full_cycles=effective_ah / cycle_ah,
            estimated_lifetime_years=lifetime_years,
            observation_seconds=self._observation_s,
        )

    def reset(self) -> None:
        """Clear all wear counters."""
        self._effective_throughput_c = 0.0
        self._raw_throughput_c = 0.0
        self._observation_s = 0.0
