"""Test-bed style characterization experiments (paper Section 3.1).

The paper's Figure 2 test-bed charges and discharges SCs and batteries in
isolation to measure round-trip efficiency (Figure 3) and discharge voltage
behaviour (Figure 5).  These functions run the same experiments against the
device models so the benchmark harness can regenerate those figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ConfigurationError
from ..units import hours
from .device import EnergyStorageDevice


@dataclass
class CharacterizationResult:
    """Time series and aggregates from one characterization run.

    Attributes:
        times_s: Sample timestamps.
        voltages_v: Terminal voltage at each sample.
        powers_w: Power actually delivered/absorbed at each sample.
        energy_delivered_j: Total terminal energy out (discharge runs).
        energy_absorbed_j: Total terminal energy in (charge runs).
        runtime_s: Time until the device could no longer meet the request.
    """

    times_s: List[float] = field(default_factory=list)
    voltages_v: List[float] = field(default_factory=list)
    powers_w: List[float] = field(default_factory=list)
    energy_delivered_j: float = 0.0
    energy_absorbed_j: float = 0.0
    runtime_s: float = 0.0


def constant_power_discharge(device: EnergyStorageDevice, power_w: float,
                             dt: float = 1.0,
                             max_time_s: float = hours(24.0),
                             ) -> CharacterizationResult:
    """Discharge at constant power until the device can no longer keep up.

    Runtime ends at the first step where the achieved power falls below the
    request (voltage collapse or depletion) — matching how the prototype's
    "maximum server runtime" experiments of Figure 6 terminate.
    """
    if power_w <= 0.0:
        raise ConfigurationError("discharge power must be positive")
    result = CharacterizationResult()
    elapsed = 0.0
    while elapsed < max_time_s:
        step = device.discharge(power_w, dt)
        result.times_s.append(elapsed)
        result.voltages_v.append(step.terminal_voltage_v)
        result.powers_w.append(step.achieved_w)
        result.energy_delivered_j += step.energy_j
        if step.limited:
            break
        elapsed += dt
    result.runtime_s = elapsed
    return result


def constant_power_charge(device: EnergyStorageDevice, power_w: float,
                          dt: float = 1.0,
                          max_time_s: float = hours(24.0),
                          ) -> CharacterizationResult:
    """Charge at constant offered power until the device is full."""
    if power_w <= 0.0:
        raise ConfigurationError("charge power must be positive")
    result = CharacterizationResult()
    elapsed = 0.0
    while elapsed < max_time_s and not device.is_full:
        step = device.charge(power_w, dt)
        result.times_s.append(elapsed)
        result.voltages_v.append(step.terminal_voltage_v)
        result.powers_w.append(step.achieved_w)
        result.energy_absorbed_j += step.energy_j
        if step.achieved_w <= 0.0:
            break
        elapsed += dt
    result.runtime_s = elapsed
    return result


def round_trip_efficiency(device: EnergyStorageDevice,
                          discharge_power_w: float,
                          charge_power_w: float,
                          dt: float = 1.0) -> float:
    """Measure energy-out / energy-in over one full cycle.

    Protocol (mirrors the paper's "detailed charging/discharging logs"):
    start full, discharge at ``discharge_power_w`` until the device limits,
    then recharge at ``charge_power_w`` back to full, and compare terminal
    energies.  Because the cycle starts and ends at the same state of
    charge, the ratio is a true round-trip efficiency.
    """
    device.reset(soc=1.0)
    discharged = constant_power_discharge(device, discharge_power_w, dt=dt)
    recharged = constant_power_charge(device, charge_power_w, dt=dt)
    if recharged.energy_absorbed_j <= 0.0:
        raise ConfigurationError(
            "device absorbed no energy; cannot compute efficiency")
    return discharged.energy_delivered_j / recharged.energy_absorbed_j


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of the battery recovery experiment (Figure 3's second part).

    Attributes:
        one_shot_energy_j: Energy from a single continuous discharge.
        rested_energy_j: Total energy when the same discharge is split into
            bursts with rest periods (recovery lets bound charge return).
        recovered_energy_j: The difference (>= 0 in a healthy model).
        recovery_gain: Fractional gain from resting (paper reports 6-24%).
        onoff_overhead_j: Energy a server fleet would waste on off/on cycles
            while waiting out the rests (paper: ~half the recovered energy).
    """

    one_shot_energy_j: float
    rested_energy_j: float
    recovered_energy_j: float
    recovery_gain: float
    onoff_overhead_j: float


def recovery_experiment(make_device, power_w: float,
                        burst_s: float = 300.0,
                        rest_s: float = 600.0,
                        cycles: int = 8,
                        restart_energy_j: float = 0.0,
                        dt: float = 1.0) -> RecoveryResult:
    """Compare one-shot versus rest-interleaved discharging.

    Args:
        make_device: Zero-argument factory returning a fresh, full device
            (two independent instances are needed for a fair comparison).
        power_w: Discharge power of each burst.
        burst_s: Burst duration.
        rest_s: Rest duration between bursts.
        cycles: Number of burst/rest pairs in the rested run.
        restart_energy_j: Per-rest energy charged against server off/on
            cycling, reported as ``onoff_overhead_j``.
        dt: Simulation step.
    """
    one_shot_device = make_device()
    one_shot = constant_power_discharge(one_shot_device, power_w, dt=dt)

    rested_device = make_device()
    rested_energy = 0.0
    rests_taken = 0
    for _ in range(cycles):
        burst = constant_power_discharge(rested_device, power_w, dt=dt,
                                         max_time_s=burst_s)
        rested_energy += burst.energy_delivered_j
        if burst.runtime_s < burst_s:
            # Even a rested battery eventually empties for real.
            if burst.energy_delivered_j <= 0.0:
                break
        rested_device.rest(rest_s)
        rests_taken += 1

    recovered = max(0.0, rested_energy - one_shot.energy_delivered_j)
    gain = (recovered / one_shot.energy_delivered_j
            if one_shot.energy_delivered_j > 0.0 else 0.0)
    return RecoveryResult(
        one_shot_energy_j=one_shot.energy_delivered_j,
        rested_energy_j=rested_energy,
        recovered_energy_j=recovered,
        recovery_gain=gain,
        onoff_overhead_j=rests_taken * restart_energy_j,
    )


def discharge_voltage_curve(device: EnergyStorageDevice, power_w: float,
                            dt: float = 1.0,
                            max_time_s: float = hours(4.0),
                            ) -> CharacterizationResult:
    """Record the terminal-voltage trajectory under constant power.

    Used by the Figure 5 benchmark: batteries show a sharp initial drop that
    deepens with load, SCs decline linearly regardless of load.
    """
    device.reset(soc=1.0)
    return constant_power_discharge(device, power_w, dt=dt,
                                    max_time_s=max_time_s)
