"""Supercapacitor model: ideal capacitor + equivalent series resistance.

The model reproduces the SC properties Section 3.1 measures:

* **linear discharge voltage** irrespective of power demand (V = q / C);
* **90-95% round-trip efficiency** — the only loss channel is ESR heating,
  small at prototype currents;
* **fast charging without an upper-bound current** — the acceptance limit
  is the (generous) converter ceiling, not chemistry;
* **enormous cycle life** — telemetry feeds a lifetime model that will
  simply never be the bottleneck ("battery lifetime is the bottleneck of
  heterogeneous energy system lifespan", Section 7.3).

Usable energy is the window between ``min_voltage_v`` (the downstream
converter's cut-off) and ``max_voltage_v``.
"""

from __future__ import annotations

import math

from ..config import SupercapConfig
from ..errors import ConfigurationError
from ..units import clamp
from .device import EnergyStorageDevice, FlowResult

_EPSILON = 1e-12


class Supercapacitor(EnergyStorageDevice):
    """A supercapacitor bank exposing the common device protocol."""

    def __init__(self, config: SupercapConfig, name: str = "supercap",
                 soc: float = 1.0) -> None:
        super().__init__(name)
        self.config = config
        # The config is a frozen dataclass, so every derived constant the
        # per-tick flow paths need is hoisted here once instead of being
        # recomputed through property chains on each call.
        self._capacitance = config.capacitance_f
        self._esr = config.esr_ohm
        self._min_v = config.min_voltage_v
        self._min_v_sq = config.min_voltage_v ** 2
        self._max_charge_c = config.max_voltage_v * config.capacitance_f
        self._max_charge_current = config.max_charge_current_a
        self._nominal_j = config.nominal_energy_j
        self._charge_c = 0.0
        self.reset(soc)

    # ------------------------------------------------------------------
    # Degradation hooks (fault injection / aging studies)
    # ------------------------------------------------------------------

    @property
    def esr_ohm(self) -> float:
        """Present equivalent series resistance (grows with drift)."""
        return self._esr

    def apply_esr_drift(self, multiplier: float) -> None:
        """Permanently raise the ESR (electrolyte dry-out, aging).

        Higher ESR degrades deliverable power and round-trip efficiency
        — the SC analogue of battery resistance growth.  Drift composes
        multiplicatively and is irreversible.

        Args:
            multiplier: Factor to apply to the present ESR (>= 1).
        """
        if multiplier < 1.0:
            raise ConfigurationError(
                f"{self.name}: ESR can only grow, got multiplier "
                f"{multiplier!r}")
        self._esr *= multiplier

    def apply_leakage(self, power_w: float, dt: float) -> float:
        """Drain stored charge internally (self-discharge / leakage).

        The energy leaves the store as internal loss: it is recorded in
        ``telemetry.loss_j`` but never in ``energy_out_j``, so delivered-
        energy accounting and the efficiency metric see leakage as pure
        waste, exactly like ESR heating.

        Args:
            power_w: Parasitic drain at the cell (>= 0).
            dt: Step length in seconds (> 0).

        Returns:
            Energy actually drained over the step in joules.
        """
        self._validate_flow_args(power_w, dt)
        v = self._charge_c / self._capacitance
        if power_w <= 0.0 or v <= _EPSILON:
            return 0.0
        current = power_w / v
        drained_c = min(self._charge_c, current * dt)
        v_end = (self._charge_c - drained_c) / self._capacitance
        self._charge_c -= drained_c
        leaked_j = 0.5 * (v + v_end) * drained_c
        self.telemetry.loss_j += leaked_j
        return leaked_j

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def voltage(self) -> float:
        """Cell voltage from stored charge (V = q / C)."""
        return self._charge_c / self._capacitance

    @property
    def nominal_energy_j(self) -> float:
        return self._nominal_j

    @property
    def stored_energy_j(self) -> float:
        """Usable energy above the converter cut-off voltage."""
        v = self._charge_c / self._capacitance
        if v <= self._min_v:
            return 0.0
        return 0.5 * self._capacitance * (v * v - self._min_v_sq)

    def open_circuit_voltage(self) -> float:
        return self.voltage

    # ------------------------------------------------------------------
    # Electrical limits
    # ------------------------------------------------------------------

    def _discharge_current_limit(self, dt: float) -> float:
        """Current that would take the cell exactly to the usable floor."""
        floor_voltage = self._floor_voltage()
        floor_charge = floor_voltage * self._capacitance
        budget_c = max(0.0, self._charge_c - floor_charge)
        return budget_c / dt

    def _floor_voltage(self) -> float:
        """Converter cut-off raised by any controller DoD restriction."""
        usable_floor_j = self._soc_floor * self._nominal_j
        # stored(v) = 0.5 C (v^2 - vmin^2)  =>  v = sqrt(2 floor/C + vmin^2)
        return math.sqrt(2.0 * usable_floor_j / self._capacitance
                         + self._min_v_sq)

    def max_discharge_power_w(self, dt: float) -> float:
        self._validate_flow_args(0.0, dt)
        v = self.voltage
        esr = self._esr
        i_limit = self._discharge_current_limit(dt)
        if esr > _EPSILON:
            i_limit = min(i_limit, v / (2.0 * esr))
        return max(0.0, i_limit * (v - i_limit * esr))

    def max_charge_power_w(self, dt: float) -> float:
        self._validate_flow_args(0.0, dt)
        headroom_c = max(0.0, self._max_charge_c - self._charge_c)
        i_limit = min(self._max_charge_current, headroom_c / dt)
        v = self.voltage
        return max(0.0, i_limit * (v + i_limit * self._esr))

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------

    def _discharge_current_for_power(self, power_w: float) -> float:
        v = self.voltage
        esr = self._esr
        if esr <= _EPSILON:
            return power_w / v if v > _EPSILON else 0.0
        discriminant = v * v - 4.0 * esr * power_w
        if discriminant < 0.0:
            return v / (2.0 * esr)
        return (v - math.sqrt(discriminant)) / (2.0 * esr)

    def _charge_current_for_power(self, power_w: float) -> float:
        v = self.voltage
        esr = self._esr
        if esr <= _EPSILON:
            return power_w / max(v, self._min_v, _EPSILON)
        discriminant = v * v + 4.0 * esr * power_w
        return (-v + math.sqrt(discriminant)) / (2.0 * esr)

    def discharge(self, power_w: float, dt: float) -> FlowResult:
        self._validate_flow_args(power_w, dt)
        v = self._charge_c / self._capacitance
        # Inlined is_depleted: usable = max(0, stored - floor) and
        # max(0, x) <= 1e-9  <=>  x <= 1e-9.
        if v <= self._min_v:
            stored = 0.0
        else:
            stored = 0.5 * self._capacitance * (v * v - self._min_v_sq)
        if (power_w <= 0.0
                or stored - self._soc_floor * self._nominal_j <= 1e-9):
            result = self._noflow(power_w, v)
            self.telemetry.record_discharge(result, 0.0, dt)
            return result

        esr = self._esr
        cap = self._capacitance
        # Solve against the mid-step voltage (one fixed-point refinement)
        # so an unclamped request actually delivers the requested power
        # instead of undershooting by the within-step droop.
        i_request = self._discharge_current_for_power(power_w)
        for _ in range(3):
            v_mid = v - 0.5 * i_request * dt / cap
            if v_mid <= _EPSILON:
                break
            discriminant = v_mid * v_mid - 4.0 * esr * power_w
            if discriminant < 0.0:
                i_request = v_mid / (2.0 * esr) if esr > _EPSILON else i_request
                break
            if esr > _EPSILON:
                i_request = (v_mid - math.sqrt(discriminant)) / (2.0 * esr)
            else:
                i_request = power_w / v_mid
        i_limit = self._discharge_current_limit(dt)
        current = min(i_request, i_limit)
        if current <= _EPSILON:
            result = self._noflow(power_w, v)
            self.telemetry.record_discharge(result, 0.0, dt)
            return result

        v_end = (self._charge_c - current * dt) / cap
        v_mid = 0.5 * (v + v_end)
        terminal_voltage = v_mid - current * esr
        achieved_w = current * terminal_voltage
        limited = achieved_w < power_w * (1.0 - 1e-6) - 1e-9

        result = FlowResult(
            requested_w=power_w,
            achieved_w=achieved_w,
            energy_j=achieved_w * dt,
            loss_j=current * current * esr * dt,
            terminal_voltage_v=terminal_voltage,
            limited=limited,
            current_a=current,
        )
        self._charge_c = max(0.0, self._charge_c - current * dt)
        self.telemetry.record_discharge(result, current, dt)
        return result

    def charge(self, power_w: float, dt: float) -> FlowResult:
        self._validate_flow_args(power_w, dt)
        v = self._charge_c / self._capacitance
        # Inlined is_full (headroom = max(0, nominal - stored) <= 1e-9).
        if v <= self._min_v:
            stored = 0.0
        else:
            stored = 0.5 * self._capacitance * (v * v - self._min_v_sq)
        if power_w <= 0.0 or self._nominal_j - stored <= 1e-9:
            result = self._noflow(power_w, v)
            self.telemetry.record_charge(result, 0.0, dt)
            return result

        esr = self._esr
        cap = self._capacitance
        # Refine against the mid-step voltage so the accepted power does
        # not overshoot the offer as the cell voltage rises within a step.
        i_request = self._charge_current_for_power(power_w)
        for _ in range(3):
            v_mid = v + 0.5 * i_request * dt / cap
            discriminant = v_mid * v_mid + 4.0 * esr * power_w
            if esr > _EPSILON:
                i_request = (-v_mid + math.sqrt(discriminant)) / (2.0 * esr)
            else:
                i_request = power_w / max(v_mid, _EPSILON)
        headroom_c = max(0.0, self._max_charge_c - self._charge_c)
        current = min(i_request, self._max_charge_current, headroom_c / dt)
        if current <= _EPSILON:
            result = self._noflow(power_w, v)
            self.telemetry.record_charge(result, 0.0, dt)
            return result

        v_end = (self._charge_c + current * dt) / cap
        v_mid = 0.5 * (v + v_end)
        terminal_voltage = v_mid + current * esr
        achieved_w = current * terminal_voltage
        limited = achieved_w < power_w - 1e-6

        result = FlowResult(
            requested_w=power_w,
            achieved_w=achieved_w,
            energy_j=achieved_w * dt,
            loss_j=current * current * esr * dt,
            terminal_voltage_v=terminal_voltage,
            limited=limited,
            current_a=current,
        )
        self._charge_c += current * dt
        self.telemetry.record_charge(result, current, dt)
        return result

    def rest(self, dt: float) -> None:
        self._validate_flow_args(0.0, dt)
        self.telemetry.record_rest(dt)

    def reset(self, soc: float = 1.0) -> None:
        cfg = self.config
        soc = clamp(soc, 0.0, 1.0)
        # Invert stored(v) = soc * nominal over the usable window.
        target_j = soc * self.nominal_energy_j
        voltage = math.sqrt(2.0 * target_j / cfg.capacitance_f
                            + cfg.min_voltage_v ** 2)
        self._charge_c = voltage * cfg.capacitance_f
        self.telemetry = type(self.telemetry)()
