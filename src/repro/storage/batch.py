"""Vectorized lane-parallel storage state for the batched engine.

One :class:`BatchBuffers <repro.sim.batch.BatchBuffers>` advances N
independent (battery, supercap, lifetime-model) triples through the
exact per-tick operation sequence of
:class:`~repro.sim.buffers.HybridBuffers` — with every lane's
arithmetic bit-identical to the scalar device models.  The scalar
models stay the oracle; this module re-derives each of their
expressions over a leading lane axis, preserving operand order, branch
structure (as masks), and epsilon thresholds exactly.

Two portability traps drive the helper functions here:

* ``np.power`` takes a SIMD path whose results differ from CPython's
  ``**`` in the last ulps on this platform, so every Peukert/lifetime
  power law is evaluated element-by-element through Python ``pow`` on
  the (rare) lanes that need it (:func:`pow_lanes`).
* Python's ``min``/``max`` builtins are *selections*, not IEEE
  min/max — ``min(a, b)`` returns ``b`` only when ``b < a`` — and the
  scalar models rely on that NaN/tie behaviour.  :func:`sel_min` /
  :func:`sel_max` replicate the selection semantics with ``np.where``.
  On the hot flow paths below, ``np.minimum``/``np.maximum`` are used
  instead where the operands are provably finite (no NaN reaches
  them), because for finite operands the selection and the IEEE
  min/max agree on every value — the only divergence, the sign of a
  ``+0.0``/``-0.0`` tie, is absorbed by the downstream no-flow
  zeroing and never feeds a sign-sensitive operation.

Throughput notes (this module is the batched engine's inner loop):

* per-lane constants and constant *subexpressions* — ``4R``,
  ``1 - c``, the KiBaM well capacities — are hoisted at construction;
  each hoisted value is the bitwise result of the scalar expression;
* identical-valued subexpressions (``y1 + y2``, the OCV, the stored
  energy) are computed once per flow and reused;
* telemetry counters drop their lane masks wherever the increment is
  exactly ``0.0`` outside the mask (``x + 0.0 == x`` for the
  non-negative counters involved);
* the battery's KiBaM well update may be *deferred*: the tick protocol
  guarantees at most one battery flow per lane per tick, so the charge
  step and the rest-lane step merge into one vectorized update at
  settle time (the wells are not read in between).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..storage.battery import LeadAcidBattery
from ..storage.device import DeviceTelemetry
from ..storage.kibam import KiBaMState, kibam_coefficients
from ..storage.lifetime import AhThroughputLifetimeModel
from ..storage.supercap import Supercapacitor

#: Device-model epsilon (``storage.battery._EPSILON`` and
#: ``storage.supercap._EPSILON``).
_DEVICE_EPS = 1e-12


def sel_min(a, b):
    """Elementwise Python ``min(a, b)``: ``b`` if ``b < a`` else ``a``."""
    return np.where(b < a, b, a)


def sel_max(a, b):
    """Elementwise Python ``max(a, b)``: ``b`` if ``b > a`` else ``a``."""
    return np.where(b > a, b, a)


def max0(x):
    """Elementwise Python ``max(0.0, x)``."""
    return np.where(x > 0.0, x, 0.0)


def clamp01(x):
    """Elementwise ``units.clamp(x, 0.0, 1.0)`` = ``max(0, min(1, x))``."""
    return sel_max(0.0, sel_min(1.0, x))


def pow_lanes(base: np.ndarray, exponents: Sequence[float],
              mask: np.ndarray) -> np.ndarray:
    """``base[i] ** exponents[i]`` via CPython pow on masked lanes.

    Lanes outside ``mask`` read 0.0 (callers select them away).  The
    loop is over ``mask``'s population count, which on the hot paths is
    the handful of lanes actually above their Peukert reference.
    """
    out = np.zeros(base.shape[0])
    idx = np.flatnonzero(mask)
    values = base[idx].tolist()
    out[idx] = [v ** exponents[i]  # repro: noqa[RPR502] per-element CPython pow: np.power's SIMD path is not bit-identical to the scalar models' `**`
                for i, v in zip(idx.tolist(), values)]
    return out


class BatchTelemetry:
    """Lane-parallel :class:`~repro.storage.device.DeviceTelemetry`.

    The record methods require flow increments (energy, loss, current)
    to already read exactly ``0.0`` on no-flow lanes — the scalar path
    records explicit zeros there, and ``x + 0.0 == x`` for these
    non-negative counters, so those adds run unmasked.
    """

    def __init__(self, n: int) -> None:
        self.energy_in_j = np.zeros(n)
        self.energy_out_j = np.zeros(n)
        self.loss_j = np.zeros(n)
        self.charge_throughput_c = np.zeros(n)
        self.discharge_throughput_c = np.zeros(n)
        self.peak_discharge_current_a = np.zeros(n)
        self.discharge_time_s = np.zeros(n)
        self.charge_time_s = np.zeros(n)
        self.rest_time_s = np.zeros(n)
        self.unmet_requests = np.zeros(n, dtype=np.int64)

    def record_discharge(self, mask: np.ndarray, energy_j: np.ndarray,
                         loss_j: np.ndarray, current: np.ndarray,
                         limited: np.ndarray, dt: float) -> None:
        """Fold one discharge step into lanes in ``mask``."""
        self.energy_out_j = self.energy_out_j + energy_j
        self.loss_j = self.loss_j + loss_j
        self.discharge_throughput_c = (self.discharge_throughput_c
                                       + current * dt)
        # current is 0.0 outside the mask, so the peak race is unmasked;
        # maximum() picks the same value as the scalar's strict-greater
        # update (ties keep an identical float).
        self.peak_discharge_current_a = np.maximum(
            self.peak_discharge_current_a, current)
        # Off-mask lanes add an exact +0.0 to a non-negative counter.
        self.discharge_time_s = self.discharge_time_s + dt * mask
        self.unmet_requests = self.unmet_requests + (mask & limited)

    def record_charge(self, mask: np.ndarray, energy_j: np.ndarray,
                      loss_j: np.ndarray, current: np.ndarray,
                      dt: float) -> None:
        self.energy_in_j = self.energy_in_j + energy_j
        self.loss_j = self.loss_j + loss_j
        self.charge_throughput_c = self.charge_throughput_c + current * dt
        self.charge_time_s = self.charge_time_s + dt * mask

    def record_charge_time_only(self, mask: np.ndarray, dt: float) -> None:
        """A charge step whose flow increments are all exactly zero."""
        self.charge_time_s = self.charge_time_s + dt * mask

    def record_rest(self, mask: np.ndarray, dt: float) -> None:
        self.rest_time_s = self.rest_time_s + dt * mask

    def write_back(self, lane: int, telemetry: DeviceTelemetry) -> None:
        """Copy one lane's counters into a scalar telemetry object."""
        telemetry.energy_in_j = float(self.energy_in_j[lane])
        telemetry.energy_out_j = float(self.energy_out_j[lane])
        telemetry.loss_j = float(self.loss_j[lane])
        telemetry.charge_throughput_c = float(self.charge_throughput_c[lane])
        telemetry.discharge_throughput_c = float(
            self.discharge_throughput_c[lane])
        telemetry.peak_discharge_current_a = float(
            self.peak_discharge_current_a[lane])
        telemetry.discharge_time_s = float(self.discharge_time_s[lane])
        telemetry.charge_time_s = float(self.charge_time_s[lane])
        telemetry.rest_time_s = float(self.rest_time_s[lane])
        telemetry.unmet_requests = int(self.unmet_requests[lane])


class BatchBattery:
    """N lead-acid batteries advanced in lockstep.

    Per-lane constants are hoisted from each scalar battery at
    construction; the two well contents are the only per-tick state.
    """

    def __init__(self, batteries: Sequence[LeadAcidBattery],
                 dt: float) -> None:
        n = len(batteries)
        self.n = n
        self.dt = dt
        self.telemetry = BatchTelemetry(n)

        def const(fn):
            return np.array([fn(b) for b in batteries], dtype=float)

        self.y1 = const(lambda b: b.state.available_c)
        self.y2 = const(lambda b: b.state.bound_c)
        self.capacity_c = const(lambda b: b.state.capacity_c)
        self.c = const(lambda b: b.state.c)
        self.k = const(lambda b: b.state.k)
        self.mean_v = const(lambda b: b._mean_voltage)
        self.ocv_empty = const(lambda b: b._ocv_empty)
        self.ocv_span = const(lambda b: b._ocv_span)
        self.r = const(lambda b: b._aged_resistance)
        self.soc_floor = const(lambda b: b._soc_floor)
        # nominal = config_nominal * (1 - age), the expression the scalar
        # paths evaluate per call from two constants.
        self.nominal_j = const(
            lambda b: b._config_nominal_j * (1.0 - b._age_fraction))
        self.floor_j = self.soc_floor * self.nominal_j
        self.floor_c = self.soc_floor * self.capacity_c
        # Hoisted scalar subexpressions (each the bitwise result the
        # scalar code computes fresh every call).
        self.avail_cap = self.capacity_c * self.c
        self.bound_cap = self.capacity_c * (1.0 - self.c)
        self.one_m_c = 1.0 - self.c
        self.four_r = 4.0 * self.r

        cfg = [b.config for b in batteries]
        self.eff_discharge = np.array(
            [c.discharge_efficiency for c in cfg])
        self.eff_charge = np.array([c.charge_efficiency for c in cfg])
        self.gassing_threshold = np.array(
            [c.gassing_soc_threshold for c in cfg])
        self.gassing_penalty = np.array([c.gassing_penalty for c in cfg])
        self.gassing_span = np.array(
            [1.0 - c.gassing_soc_threshold for c in cfg])
        self.max_charge_current = np.array(
            [c.max_charge_current_a for c in cfg])
        self.min_terminal_v = np.array(
            [c.min_terminal_voltage_v for c in cfg])
        self.ref = np.array([c.reference_current_a for c in cfg])
        self.pk_is_one = np.array(
            [c.peukert_exponent == 1.0 for c in cfg], dtype=bool)
        # Scalar-pow constants, evaluated per lane through CPython pow
        # exactly as the scalar call sites do on every invocation.
        self.ref_pow = np.array(
            [c.reference_current_a ** (c.peukert_exponent - 1.0)
             for c in cfg])
        self.inv_pk: List[float] = [
            1.0 / c.peukert_exponent for c in cfg]
        self.pk_m1: List[float] = [
            c.peukert_exponent - 1.0 for c in cfg]

        self.r_small = self.r <= _DEVICE_EPS
        self.r_safe = np.where(self.r_small, 1.0, self.r)
        self.two_r = 2.0 * self.r_safe
        self.any_r_small = bool(self.r_small.any())

        coeffs = [kibam_coefficients(c.kibam_k_per_s, c.kibam_c, dt)
                  for c in cfg]
        self.ekt = np.array([co.ekt for co in coeffs])
        self.one_m_ekt = np.array([co.one_m_ekt for co in coeffs])
        self.ramp = np.array([co.kdt_m_one_m_ekt for co in coeffs])
        self.denominator = np.array([co.denominator for co in coeffs])
        self.den_bad = self.denominator <= 0.0
        self.den_safe = np.where(self.den_bad, 1.0, self.denominator)
        self.any_den_bad = bool(self.den_bad.any())

        self._zeros = np.zeros(n)
        self._zeros.setflags(write=False)
        # Deferred KiBaM step (see flush_step).
        self._def_mask: Optional[np.ndarray] = None
        self._def_i: Optional[np.ndarray] = None
        # With the wells inside their capacity bounds, the scalar's
        # ``min(1, max(0, y1 / avail_cap))`` SoC fraction is bitwise the
        # bare ratio; the KiBaM clamps maintain the invariant, so it
        # only needs checking on the initial state.
        self.fraction_plain = bool(
            (self.y1 >= 0.0).all() and (self.y1 <= self.avail_cap).all())

    # -- state views ---------------------------------------------------

    def open_circuit_voltage(self) -> np.ndarray:
        fraction = np.minimum(1.0, np.maximum(0.0, self.y1 / self.avail_cap))
        return self.ocv_empty + self.ocv_span * fraction

    def stored_j(self) -> np.ndarray:
        return (self.y1 + self.y2) * self.mean_v

    def soc(self) -> np.ndarray:
        return np.maximum(0.0, np.minimum(1.0, self.stored_j()
                                          / self.nominal_j))

    def usable_j(self) -> np.ndarray:
        return np.maximum(0.0, self.stored_j() - self.floor_j)

    # -- internals -----------------------------------------------------

    def _kibam_step(self, mask: Optional[np.ndarray],
                    i: Optional[np.ndarray],
                    y0: Optional[np.ndarray] = None) -> None:
        """Advance the wells; ``mask=None`` means every lane.

        ``i=None`` is the zero-current (rest/no-flow) step: the scalar
        expression's ``i`` terms subtract an exact ``±0.0``, which
        leaves every float unchanged, so they are skipped wholesale.
        """
        y1, y2 = self.y1, self.y2
        if y0 is None:
            y0 = y1 + y2
        k = self.k
        if i is None:
            new_y1 = (y1 * self.ekt
                      + (y0 * k * self.c) * self.one_m_ekt / k)
            new_y2 = (y2 * self.ekt
                      + y0 * self.one_m_c * self.one_m_ekt)
        else:
            new_y1 = (y1 * self.ekt
                      + (y0 * k * self.c - i) * self.one_m_ekt / k
                      - i * self.c * self.ramp / k)
            new_y2 = (y2 * self.ekt
                      + y0 * self.one_m_c * self.one_m_ekt
                      - i * self.one_m_c * self.ramp / k)
        new_y1 = np.where(new_y1 < 0.0, 0.0,
                          np.where(new_y1 > self.avail_cap,
                                   self.avail_cap, new_y1))
        new_y2 = np.where(new_y2 < 0.0, 0.0,
                          np.where(new_y2 > self.bound_cap,
                                   self.bound_cap, new_y2))
        if mask is None:
            self.y1 = new_y1
            self.y2 = new_y2
        else:
            self.y1 = np.where(mask, new_y1, y1)
            self.y2 = np.where(mask, new_y2, y2)

    def flush_step(self, rest_mask: np.ndarray,
                   any_rest: bool) -> None:
        """Apply the deferred charge step merged with the rest step.

        The tick protocol invokes at most one battery flow per lane per
        tick and nothing reads the wells between a charge and settle,
        so one merged update is exactly the scalar sequence.  Deferred
        charge currents are 0.0 on rest lanes (and ``-0.0`` on no-flow
        charge lanes, which the KiBaM expressions absorb identically to
        the scalar's ``+0.0``).
        """
        if self._def_mask is None:
            if any_rest:
                mask = (None if np.count_nonzero(rest_mask) == rest_mask.size
                        else rest_mask)
                self._kibam_step(mask, None)
            return
        if any_rest:
            merged = self._def_mask | rest_mask
            if np.count_nonzero(merged) == merged.size:
                merged = None
        else:
            merged = self._def_mask
        self._kibam_step(merged, self._def_i)
        self._def_mask = None
        self._def_i = None

    def _invert_peukert(self, effective: np.ndarray,
                        mask: np.ndarray) -> np.ndarray:
        identity = (effective <= self.ref) | self.pk_is_one
        need = mask & ~identity
        if not np.count_nonzero(need):
            return effective
        powed = pow_lanes(effective * self.ref_pow, self.inv_pk, need)
        return np.where(identity, effective, powed)

    def _peukert_multiplier(self, current: np.ndarray,
                            mask: np.ndarray) -> Optional[np.ndarray]:
        """The Peukert drain multiplier, or None when it is 1.0 everywhere."""
        identity = (current <= self.ref) | self.pk_is_one
        need = mask & ~identity
        if not np.count_nonzero(need):
            return None
        powed = pow_lanes(current / self.ref, self.pk_m1, need)
        return np.where(identity, 1.0, powed)

    def _charge_efficiency_now(self, soc: np.ndarray) -> np.ndarray:
        gassing = soc > self.gassing_threshold
        if not np.count_nonzero(gassing):
            return self.eff_charge
        fraction = np.minimum(
            1.0, (soc - self.gassing_threshold) / self.gassing_span)
        gassed = self.eff_charge * (1.0 - self.gassing_penalty * fraction)
        return np.where(gassing, gassed, self.eff_charge)

    # -- flows ---------------------------------------------------------

    def discharge(self, mask: np.ndarray, power_w: np.ndarray, dt: float):
        """Lane-parallel ``LeadAcidBattery.discharge``.

        Returns ``(achieved, current)``, both 0.0 outside ``mask`` and
        on no-flow lanes.  The KiBaM step runs immediately (callers
        need the post-step SoC).
        """
        y1, y2 = self.y1, self.y2
        y0 = y1 + y2
        fraction = y1 / self.avail_cap
        if not self.fraction_plain:
            fraction = np.minimum(1.0, np.maximum(0.0, fraction))
        v_oc = self.ocv_empty + self.ocv_span * fraction
        stored = y0 * self.mean_v
        noflow = (power_w <= 0.0) | (stored - self.floor_j <= 1e-9)
        pre_active = mask & ~noflow

        # Request current: smaller root of I (V_oc - I R) = P.
        discriminant = v_oc * v_oc - self.four_r * power_w
        neg = discriminant < 0.0
        if np.count_nonzero(neg):
            root = np.sqrt(np.where(neg, 0.0, discriminant))
            i_request = np.where(neg, v_oc / self.two_r,
                                 (v_oc - root) / self.two_r)
        else:
            i_request = (v_oc - np.sqrt(discriminant)) / self.two_r
        if self.any_r_small:
            i_request = np.where(self.r_small, power_w / v_oc, i_request)
            i_voltage = np.where(
                self.r_small, np.inf,
                np.maximum(0.0, (v_oc - self.min_terminal_v) / self.r_safe))
        else:
            # Limit (1): terminal voltage above the brown-out floor.
            i_voltage = np.maximum(
                0.0, (v_oc - self.min_terminal_v) / self.r_safe)
        # Limit (2): available well must not empty (Peukert-scaled).
        numerator = (self.k * y1 * self.ekt
                     + y0 * self.k * self.c * self.one_m_ekt)
        if self.any_den_bad:
            i_kibam_eff = np.where(
                self.den_bad, 0.0,
                np.maximum(0.0, numerator / self.den_safe))
        else:
            i_kibam_eff = np.maximum(0.0, numerator / self.den_safe)
        i_kibam_eff = i_kibam_eff * self.eff_discharge
        i_kibam = self._invert_peukert(i_kibam_eff, pre_active)
        # Limit (3): total charge must stay above the DoD floor.
        budget_c = np.maximum(0.0, y0 - self.floor_c)
        i_floor_eff = budget_c / dt * self.eff_discharge
        i_floor = self._invert_peukert(i_floor_eff, pre_active)
        i_limit = np.maximum(
            0.0, np.minimum(np.minimum(i_voltage, i_kibam), i_floor))

        current = np.minimum(i_request, i_limit)
        noflow = noflow | (current <= _DEVICE_EPS)
        active = mask & ~noflow
        current = np.where(active, current, 0.0)

        terminal_v = v_oc - current * self.r
        # current is exactly 0.0 off-active, and v_oc is finite
        # positive, so the products below are exact +0.0 there —
        # no masking needed.
        achieved = current * terminal_v
        limited_active = achieved < power_w - 1e-6

        multiplier = self._peukert_multiplier(current, active)
        if multiplier is None:
            drain = current / self.eff_discharge
        else:
            drain = current * multiplier / self.eff_discharge
        ir_loss = current * current * self.r * dt
        internal_loss = (drain - current) * terminal_v * dt
        loss = ir_loss + np.maximum(0.0, internal_loss)

        self._kibam_step(mask, drain, y0=y0)
        self.telemetry.record_discharge(
            mask, achieved * dt, loss, current,
            np.where(noflow, power_w > 0.0, limited_active), dt)
        return achieved, current

    def charge(self, mask: np.ndarray, power_w: np.ndarray, dt: float,
               defer_step: bool = False) -> np.ndarray:
        """Lane-parallel ``LeadAcidBattery.charge``; returns achieved.

        With ``defer_step`` the KiBaM update is stashed for
        :meth:`flush_step` — valid only when no battery state is read
        before the flush and no second flow touches these lanes.
        """
        y1, y2 = self.y1, self.y2
        y0 = y1 + y2
        fraction = y1 / self.avail_cap
        if not self.fraction_plain:
            fraction = np.minimum(1.0, np.maximum(0.0, fraction))
        v_oc = self.ocv_empty + self.ocv_span * fraction
        stored = y0 * self.mean_v
        noflow = (power_w <= 0.0) | (self.nominal_j - stored <= 1e-9)
        active = mask & ~noflow
        if not np.count_nonzero(active):
            # Every invoked lane is a no-flow: zero increments, i=0 step.
            if defer_step:
                self._def_mask = mask
                self._def_i = None
            else:
                self._kibam_step(mask, None, y0=y0)
            self.telemetry.record_charge_time_only(mask, dt)
            return self._zeros

        discriminant = v_oc * v_oc + self.four_r * power_w
        i_request = (-v_oc + np.sqrt(discriminant)) / self.two_r
        if self.any_r_small:
            i_request = np.where(self.r_small, power_w / v_oc, i_request)

        soc = np.maximum(0.0, np.minimum(1.0, stored / self.nominal_j))
        efficiency = self._charge_efficiency_now(soc)
        numerator = (self.avail_cap - y1 * self.ekt
                     - y0 * self.c * self.one_m_ekt) * self.k
        if self.any_den_bad:
            kibam_max = np.where(
                self.den_bad, 0.0,
                np.maximum(0.0, numerator / self.den_safe))
        else:
            kibam_max = np.maximum(0.0, numerator / self.den_safe)
        i_kibam = kibam_max / efficiency
        headroom_c = np.maximum(0.0, self.capacity_c - y0)
        i_headroom = headroom_c / dt / efficiency
        i_limit = np.maximum(
            0.0, np.minimum(np.minimum(self.max_charge_current, i_kibam),
                            i_headroom))

        current = np.minimum(i_request, i_limit)
        noflow = noflow | (current <= _DEVICE_EPS)
        active = mask & ~noflow
        current = np.where(active, current, 0.0)

        terminal_v = v_oc + current * self.r
        # Exact +0.0 off-active (see discharge).
        achieved = current * terminal_v
        stored_current = current * efficiency
        ir_loss = current * current * self.r * dt
        coulombic_loss = (current - stored_current) * v_oc * dt
        loss = ir_loss + coulombic_loss

        # stored_current is exactly 0.0 outside `active`, so its
        # negation is the scalar's ``0.0`` no-flow current up to the
        # sign of zero, which every KiBaM term absorbs.
        if defer_step:
            self._def_mask = mask
            self._def_i = -stored_current
        else:
            self._kibam_step(mask, -stored_current, y0=y0)
        self.telemetry.record_charge(mask, achieved * dt, loss, current, dt)
        return achieved

    def write_back(self, lane: int, battery: LeadAcidBattery) -> None:
        """Install one lane's final wells and telemetry into a battery."""
        battery._state = KiBaMState(
            available_c=float(self.y1[lane]),
            bound_c=float(self.y2[lane]),
            capacity_c=float(self.capacity_c[lane]),
            c=float(self.c[lane]),
            k=float(self.k[lane]),
        )
        self.telemetry.write_back(lane, battery.telemetry)


class BatchSupercap:
    """N supercapacitors advanced in lockstep.

    Lanes without an SC pool (``present`` False) carry benign parked
    constants and are excluded from every operation mask by the caller.
    """

    def __init__(self, scs: Sequence[Optional[Supercapacitor]],
                 dt: float) -> None:
        n = len(scs)
        self.n = n
        self.telemetry = BatchTelemetry(n)
        self.present = np.array([s is not None for s in scs], dtype=bool)

        def const(fn, parked):
            return np.array(
                [parked if s is None else fn(s) for s in scs], dtype=float)

        self.charge_c = const(lambda s: s._charge_c, 0.0)
        self.capacitance = const(lambda s: s._capacitance, 1.0)
        self.esr = const(lambda s: s._esr, 0.0)
        self.min_v = const(lambda s: s._min_v, 0.0)
        self.min_v_sq = const(lambda s: s._min_v_sq, 0.0)
        self.max_charge_c = const(lambda s: s._max_charge_c, 0.0)
        self.max_charge_current = const(lambda s: s._max_charge_current, 0.0)
        self.nominal_j = const(lambda s: s._nominal_j, 1.0)
        self.soc_floor = const(lambda s: s._soc_floor, 0.0)
        self.floor_j = self.soc_floor * self.nominal_j
        # _floor_voltage(): a pure function of constants; evaluated per
        # lane through math.sqrt exactly as the scalar method does.
        self.floor_voltage = const(lambda s: s._floor_voltage(), 0.0)
        self.floor_charge = self.floor_voltage * self.capacitance
        self.four_esr = 4.0 * self.esr

        self.esr_small = self.esr <= _DEVICE_EPS
        self.esr_safe = np.where(self.esr_small, 1.0, self.esr)
        self.two_esr = 2.0 * self.esr_safe
        # True when every *present* lane has a real ESR — the common
        # case, which skips the zero-ESR current formulas entirely
        # (parked lanes compute garbage that their masks discard).
        self.esr_uniform = not bool((self.esr_small & self.present).any())

        self._zeros = np.zeros(n)
        self._zeros.setflags(write=False)

    # -- state views ---------------------------------------------------

    def stored_j(self) -> np.ndarray:
        v = self.charge_c / self.capacitance
        stored = 0.5 * self.capacitance * (v * v - self.min_v_sq)
        return np.where(v <= self.min_v, 0.0, stored)

    def usable_j(self) -> np.ndarray:
        return np.maximum(0.0, self.stored_j() - self.floor_j)

    # -- flows ---------------------------------------------------------

    def discharge(self, mask: np.ndarray, power_w: np.ndarray,
                  dt: float) -> np.ndarray:
        """Lane-parallel ``Supercapacitor.discharge``; returns achieved."""
        cap = self.capacitance
        v = self.charge_c / cap
        stored = np.where(v <= self.min_v, 0.0,
                          0.5 * cap * (v * v - self.min_v_sq))
        noflow = (power_w <= 0.0) | (stored - self.floor_j <= 1e-9)

        discriminant = v * v - self.four_esr * power_w
        neg = discriminant < 0.0
        if np.count_nonzero(neg):
            root = np.sqrt(np.where(neg, 0.0, discriminant))
            with_esr = np.where(neg, v / self.two_esr,
                                (v - root) / self.two_esr)
        else:
            with_esr = (v - np.sqrt(discriminant)) / self.two_esr
        if self.esr_uniform:
            i_request = with_esr
        else:
            no_esr = np.where(v > _DEVICE_EPS,
                              power_w / np.where(v > _DEVICE_EPS, v, 1.0), 0.0)
            i_request = np.where(self.esr_small, no_esr, with_esr)

        # Mid-step refinement with the scalar loop's two break points
        # emulated by a frozen mask (a broken lane keeps its current).
        frozen = None
        half_dt = 0.5 * dt  # exact; (0.5*i)*dt == i*(0.5*dt) bitwise
        for _ in range(3):
            v_mid = v - i_request * half_dt / cap
            low = v_mid <= _DEVICE_EPS
            frozen = low if frozen is None else frozen | low
            any_frozen = np.count_nonzero(frozen)
            discriminant = v_mid * v_mid - self.four_esr * power_w
            neg = discriminant < 0.0
            if np.count_nonzero(neg):
                hit_max = neg if not any_frozen else ~frozen & neg
                i_request = np.where(hit_max & ~self.esr_small,
                                     v_mid / self.two_esr, i_request)
                frozen = frozen | hit_max
                any_frozen = True
                root = np.sqrt(np.where(neg, 0.0, discriminant))
            else:
                root = np.sqrt(discriminant)
            if self.esr_uniform:
                refined = (v_mid - root) / self.two_esr
            else:
                refined = np.where(
                    self.esr_small,
                    power_w / (np.where(frozen, 1.0, v_mid) if any_frozen
                             else v_mid),
                    (v_mid - root) / self.two_esr)
            if any_frozen:
                i_request = np.where(frozen, i_request, refined)
            else:
                i_request = refined

        budget_c = np.maximum(0.0, self.charge_c - self.floor_charge)
        i_limit = budget_c / dt

        current = np.minimum(i_request, i_limit)
        noflow = noflow | (current <= _DEVICE_EPS)
        active = mask & ~noflow
        current = np.where(active, current, 0.0)

        v_end = (self.charge_c - current * dt) / cap
        v_mid = 0.5 * (v + v_end)
        terminal_v = v_mid - current * self.esr
        # current is exactly 0.0 off-active and v_mid >= 0, so the
        # product is an exact +0.0 there.
        achieved = current * terminal_v
        limited_active = achieved < power_w * (1.0 - 1e-6) - 1e-9
        loss = current * current * self.esr * dt

        # Off-active lanes subtract an exact 0.0 from a non-negative
        # charge, and maximum(0, x) returns x for x >= +0.0.
        self.charge_c = np.maximum(0.0, self.charge_c - current * dt)
        self.telemetry.record_discharge(
            mask, achieved * dt, loss, current,
            np.where(noflow, power_w > 0.0, limited_active), dt)
        return achieved

    def charge(self, mask: np.ndarray, power_w: np.ndarray,
               dt: float) -> np.ndarray:
        """Lane-parallel ``Supercapacitor.charge``; returns achieved."""
        cap = self.capacitance
        v = self.charge_c / cap
        stored = np.where(v <= self.min_v, 0.0,
                          0.5 * cap * (v * v - self.min_v_sq))
        noflow = (power_w <= 0.0) | (self.nominal_j - stored <= 1e-9)
        active = mask & ~noflow
        if not np.count_nonzero(active):
            self.telemetry.record_charge_time_only(mask, dt)
            return self._zeros

        discriminant = v * v + self.four_esr * power_w
        with_esr = (-v + np.sqrt(discriminant)) / self.two_esr
        if self.esr_uniform:
            i_request = with_esr
        else:
            no_esr = power_w / sel_max(sel_max(v, self.min_v), _DEVICE_EPS)
            i_request = np.where(self.esr_small, no_esr, with_esr)

        half_dt = 0.5 * dt  # exact; (0.5*i)*dt == i*(0.5*dt) bitwise
        for _ in range(3):
            v_mid = v + i_request * half_dt / cap
            discriminant = v_mid * v_mid + self.four_esr * power_w
            with_esr = (-v_mid + np.sqrt(discriminant)) / self.two_esr
            if self.esr_uniform:
                i_request = with_esr
            else:
                no_esr = power_w / sel_max(v_mid, _DEVICE_EPS)
                i_request = np.where(self.esr_small, no_esr, with_esr)

        headroom_c = np.maximum(0.0, self.max_charge_c - self.charge_c)
        current = np.minimum(np.minimum(i_request, self.max_charge_current),
                             headroom_c / dt)
        noflow = noflow | (current <= _DEVICE_EPS)
        active = mask & ~noflow
        current = np.where(active, current, 0.0)

        v_end = (self.charge_c + current * dt) / cap
        v_mid = 0.5 * (v + v_end)
        terminal_v = v_mid + current * self.esr
        achieved = current * terminal_v
        loss = current * current * self.esr * dt

        # current is exactly 0.0 outside `active`, so the unmasked add
        # leaves inactive lanes' (non-negative) charge unchanged.
        self.charge_c = self.charge_c + current * dt
        self.telemetry.record_charge(mask, achieved * dt, loss, current, dt)
        return achieved

    def rest(self, mask: np.ndarray, dt: float) -> None:
        self.telemetry.record_rest(mask, dt)

    def write_back(self, lane: int, sc: Supercapacitor) -> None:
        sc._charge_c = float(self.charge_c[lane])
        self.telemetry.write_back(lane, sc.telemetry)


class BatchLifetime:
    """Lane-parallel :class:`AhThroughputLifetimeModel` counters."""

    def __init__(self, models: Sequence[AhThroughputLifetimeModel]) -> None:
        n = len(models)
        self.n = n
        self.ref = np.array(
            [m.config.reference_current_a for m in models])
        self.exponent_on = np.array(
            [bool(m.current_stress_exponent) for m in models], dtype=bool)
        self.exponents: List[float] = [
            m.current_stress_exponent for m in models]
        self.stress = np.array([m.low_soc_stress for m in models])
        self.effective_c = np.zeros(n)
        self.raw_c = np.zeros(n)
        self.observation_s = np.zeros(n)

    def observe_discharge(self, mask: np.ndarray, current: np.ndarray,
                          dt: float, soc: np.ndarray) -> None:
        # current is 0.0 outside `mask`, so the throughput adds run
        # unmasked (scalar weight math on a zero current contributes
        # exactly zero).
        charge_c = current * dt
        soc_weight = 1.0 + self.stress * np.maximum(0.0, 1.0 - soc)
        stressed = (current > self.ref) & self.exponent_on
        need = mask & stressed
        if np.count_nonzero(need):
            current_weight = np.where(
                stressed,
                pow_lanes(current / self.ref, self.exponents, need), 1.0)
            weight = current_weight * soc_weight
        else:
            # current_weight is 1.0 everywhere; 1.0 * w == w bitwise.
            weight = soc_weight
        self.raw_c = self.raw_c + charge_c
        self.effective_c = self.effective_c + charge_c * weight
        self.observation_s = self.observation_s + dt * mask

    def observe_idle(self, mask: Optional[np.ndarray], dt: float) -> None:
        """Extend the observation window; ``mask=None`` = every lane."""
        if mask is None:
            self.observation_s = self.observation_s + dt
        else:
            self.observation_s = self.observation_s + dt * mask

    def write_back(self, lane: int,
                   model: AhThroughputLifetimeModel) -> None:
        model._effective_throughput_c = float(self.effective_c[lane])
        model._raw_throughput_c = float(self.raw_c[lane])
        model._observation_s = float(self.observation_s[lane])


__all__ = [
    "BatchBattery",
    "BatchLifetime",
    "BatchSupercap",
    "BatchTelemetry",
    "clamp01",
    "max0",
    "pow_lanes",
    "sel_max",
    "sel_min",
]
