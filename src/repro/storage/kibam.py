"""Kinetic Battery Model (KiBaM) core.

KiBaM (Manwell & McGowan) models a battery as two charge wells:

* an *available* well of fraction ``c`` that feeds the terminals directly;
* a *bound* well holding the remaining ``1 - c`` that replenishes the
  available well at a rate proportional to the head difference, with rate
  constant ``k``.

This single abstraction produces both lead-acid phenomena the paper's
Section 3.1 characterizes and exploits:

* the **rate-capacity (Peukert-like) effect** — at high currents the
  available well drains before the bound charge can migrate, so less total
  charge is extractable;
* the **recovery effect** — during rest, bound charge migrates back into
  the available well, so "lost" energy reappears ("during periods of no or
  very low discharge, they can recover the energy 'lost' to a certain
  extent").

The constant-current step has a closed-form solution, so the simulator can
take arbitrarily long steps without integration error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass
class KiBaMState:
    """Charge distribution between the two wells (coulombs).

    Attributes:
        available_c: Charge in the directly extractable well (y1).
        bound_c: Charge in the chemically bound well (y2).
        capacity_c: Total well capacity (y1max + y2max).
        c: Available-well fraction of capacity.
        k: Inter-well rate constant (1/s), in the *modified* convention
            where the closed-form below applies directly.
    """

    available_c: float
    bound_c: float
    capacity_c: float
    c: float
    k: float

    def __post_init__(self) -> None:
        if not 0.0 < self.c < 1.0:
            raise ConfigurationError(f"KiBaM c must lie in (0,1): {self.c!r}")
        if self.k <= 0.0:
            raise ConfigurationError(f"KiBaM k must be positive: {self.k!r}")
        if self.capacity_c <= 0.0:
            raise ConfigurationError(
                f"KiBaM capacity must be positive: {self.capacity_c!r}")

    @classmethod
    def at_soc(cls, capacity_c: float, c: float, k: float,
               soc: float) -> "KiBaMState":
        """Build an equilibrium state holding ``soc`` of total capacity."""
        if not 0.0 <= soc <= 1.0:
            raise ConfigurationError(f"soc must lie in [0,1]: {soc!r}")
        total = capacity_c * soc
        return cls(available_c=total * c, bound_c=total * (1.0 - c),
                   capacity_c=capacity_c, c=c, k=k)

    @property
    def total_c(self) -> float:
        """Total stored charge across both wells."""
        return self.available_c + self.bound_c

    @property
    def soc(self) -> float:
        """Total state of charge in [0, 1]."""
        return min(1.0, max(0.0, self.total_c / self.capacity_c))

    @property
    def available_fraction(self) -> float:
        """Fill level of the available well relative to its own capacity.

        This, not the total SoC, drives the transient open-circuit voltage:
        a heavily loaded battery's available well empties first, producing
        the sharp voltage drop of Figure 5 and the bounce-back after rest.
        """
        available_capacity = self.capacity_c * self.c
        return min(1.0, max(0.0, self.available_c / available_capacity))


def kibam_step(state: KiBaMState, current_a: float, dt: float) -> KiBaMState:
    """Advance the two wells by ``dt`` seconds at constant current.

    Args:
        state: Current well distribution.
        current_a: Terminal current; positive discharges, negative charges,
            zero rests (recovery only).
        dt: Step duration in seconds (> 0).

    Returns:
        The new state.  Well contents are clamped to [0, well capacity]
        after the analytic update so numerical dust never leaks out.
    """
    if dt <= 0.0:
        raise ConfigurationError(f"dt must be positive, got {dt!r}")
    k, c = state.k, state.c
    y1, y2, y0 = state.available_c, state.bound_c, state.total_c
    i = current_a

    ekt = math.exp(-k * dt)
    one_m_ekt = 1.0 - ekt
    # Closed-form constant-current solution (Manwell & McGowan 1993).
    new_y1 = (y1 * ekt
              + (y0 * k * c - i) * one_m_ekt / k
              - i * c * (k * dt - one_m_ekt) / k)
    new_y2 = (y2 * ekt
              + y0 * (1.0 - c) * one_m_ekt
              - i * (1.0 - c) * (k * dt - one_m_ekt) / k)

    available_capacity = state.capacity_c * c
    bound_capacity = state.capacity_c * (1.0 - c)
    new_y1 = min(max(new_y1, 0.0), available_capacity)
    new_y2 = min(max(new_y2, 0.0), bound_capacity)
    return KiBaMState(available_c=new_y1, bound_c=new_y2,
                      capacity_c=state.capacity_c, c=c, k=k)


def kibam_max_discharge_current(state: KiBaMState, dt: float) -> float:
    """Largest constant current that keeps the available well >= 0 over dt.

    Derived by setting y1(dt) = 0 in the closed-form solution and solving
    for the current.
    """
    if dt <= 0.0:
        raise ConfigurationError(f"dt must be positive, got {dt!r}")
    k, c = state.k, state.c
    y1, y0 = state.available_c, state.total_c

    ekt = math.exp(-k * dt)
    one_m_ekt = 1.0 - ekt
    denominator = one_m_ekt + c * (k * dt - one_m_ekt)
    if denominator <= 0.0:
        return 0.0
    numerator = k * y1 * ekt + y0 * k * c * one_m_ekt
    return max(0.0, numerator / denominator)


def kibam_max_charge_current(state: KiBaMState, dt: float) -> float:
    """Largest constant charging current that keeps the available well
    at or below its capacity over ``dt`` seconds.

    The mirror image of :func:`kibam_max_discharge_current`: charging fills
    the available well first, and acceptance drops as it saturates — the
    physical root of the battery's limited valley-energy absorption that
    the REU experiments (Figure 12d) hinge on.
    """
    if dt <= 0.0:
        raise ConfigurationError(f"dt must be positive, got {dt!r}")
    k, c = state.k, state.c
    y1, y0 = state.available_c, state.total_c
    available_capacity = state.capacity_c * c

    ekt = math.exp(-k * dt)
    one_m_ekt = 1.0 - ekt
    denominator = one_m_ekt + c * (k * dt - one_m_ekt)
    if denominator <= 0.0:
        return 0.0
    # Set y1(dt) = available_capacity with i = -current (charging).
    numerator = (available_capacity - y1 * ekt
                 - y0 * c * one_m_ekt) * k
    return max(0.0, numerator / denominator)
