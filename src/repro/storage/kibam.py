"""Kinetic Battery Model (KiBaM) core.

KiBaM (Manwell & McGowan) models a battery as two charge wells:

* an *available* well of fraction ``c`` that feeds the terminals directly;
* a *bound* well holding the remaining ``1 - c`` that replenishes the
  available well at a rate proportional to the head difference, with rate
  constant ``k``.

This single abstraction produces both lead-acid phenomena the paper's
Section 3.1 characterizes and exploits:

* the **rate-capacity (Peukert-like) effect** — at high currents the
  available well drains before the bound charge can migrate, so less total
  charge is extractable;
* the **recovery effect** — during rest, bound charge migrates back into
  the available well, so "lost" energy reappears ("during periods of no or
  very low discharge, they can recover the energy 'lost' to a certain
  extent").

The constant-current step has a closed-form solution, so the simulator can
take arbitrarily long steps without integration error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError


@dataclass
class KiBaMState:
    """Charge distribution between the two wells (coulombs).

    Attributes:
        available_c: Charge in the directly extractable well (y1).
        bound_c: Charge in the chemically bound well (y2).
        capacity_c: Total well capacity (y1max + y2max).
        c: Available-well fraction of capacity.
        k: Inter-well rate constant (1/s), in the *modified* convention
            where the closed-form below applies directly.
    """

    available_c: float
    bound_c: float
    capacity_c: float
    c: float
    k: float

    def __post_init__(self) -> None:
        if not 0.0 < self.c < 1.0:
            raise ConfigurationError(f"KiBaM c must lie in (0,1): {self.c!r}")
        if self.k <= 0.0:
            raise ConfigurationError(f"KiBaM k must be positive: {self.k!r}")
        if self.capacity_c <= 0.0:
            raise ConfigurationError(
                f"KiBaM capacity must be positive: {self.capacity_c!r}")

    @classmethod
    def at_soc(cls, capacity_c: float, c: float, k: float,
               soc: float) -> "KiBaMState":
        """Build an equilibrium state holding ``soc`` of total capacity."""
        if not 0.0 <= soc <= 1.0:
            raise ConfigurationError(f"soc must lie in [0,1]: {soc!r}")
        total = capacity_c * soc
        return cls(available_c=total * c, bound_c=total * (1.0 - c),
                   capacity_c=capacity_c, c=c, k=k)

    @property
    def total_c(self) -> float:
        """Total stored charge across both wells."""
        return self.available_c + self.bound_c

    @property
    def soc(self) -> float:
        """Total state of charge in [0, 1]."""
        return min(1.0, max(0.0, self.total_c / self.capacity_c))

    @property
    def available_fraction(self) -> float:
        """Fill level of the available well relative to its own capacity.

        This, not the total SoC, drives the transient open-circuit voltage:
        a heavily loaded battery's available well empties first, producing
        the sharp voltage drop of Figure 5 and the bounce-back after rest.
        """
        available_capacity = self.capacity_c * self.c
        return min(1.0, max(0.0, self.available_c / available_capacity))


@dataclass(frozen=True)
class KiBaMCoefficients:
    """The step terms that depend only on ``(k, c, dt)``, not on state.

    Every closed-form expression below reuses ``exp(-k dt)`` and two
    derived terms; with a fixed simulation tick these are loop
    invariants, so they are computed once per parameter triple and
    memoized.  Each derived term mirrors the exact arithmetic of the
    original inline expressions (same operand order), so cached and
    uncached evaluation are bit-for-bit identical.
    """

    k: float
    c: float
    dt: float
    ekt: float
    one_m_ekt: float
    #: ``k*dt - (1 - exp(-k dt))`` — the ramp term of the closed form.
    kdt_m_one_m_ekt: float
    #: ``one_m_ekt + c * kdt_m_one_m_ekt`` — shared max-current denominator.
    denominator: float


_COEFFICIENT_CACHE: Dict[Tuple[float, float, float], KiBaMCoefficients] = {}


def kibam_coefficients(k: float, c: float, dt: float) -> KiBaMCoefficients:
    """Memoized step coefficients for one ``(k, c, dt)`` triple."""
    key = (k, c, dt)
    cached = _COEFFICIENT_CACHE.get(key)
    if cached is None:
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt!r}")
        ekt = math.exp(-k * dt)
        one_m_ekt = 1.0 - ekt
        kdt_m_one_m_ekt = k * dt - one_m_ekt
        denominator = one_m_ekt + c * (k * dt - one_m_ekt)
        cached = KiBaMCoefficients(
            k=k, c=c, dt=dt, ekt=ekt, one_m_ekt=one_m_ekt,
            kdt_m_one_m_ekt=kdt_m_one_m_ekt, denominator=denominator)
        _COEFFICIENT_CACHE[key] = cached  # repro: noqa[RPR702] pure memo keyed by (k, c, dt); per-worker copies recompute identical values, so divergence is unobservable
    return cached


def _evolved(state: KiBaMState, available_c: float,
             bound_c: float) -> KiBaMState:
    """New state with updated wells, skipping re-validation.

    ``__post_init__`` checks parameters that are copied unchanged from an
    already-validated state, so the analytic step bypasses it.
    """
    new = KiBaMState.__new__(KiBaMState)
    new.available_c = available_c
    new.bound_c = bound_c
    new.capacity_c = state.capacity_c
    new.c = state.c
    new.k = state.k
    return new


def kibam_step(state: KiBaMState, current_a: float, dt: float,
               coeffs: Optional[KiBaMCoefficients] = None) -> KiBaMState:
    """Advance the two wells by ``dt`` seconds at constant current.

    Args:
        state: Current well distribution.
        current_a: Terminal current; positive discharges, negative charges,
            zero rests (recovery only).
        dt: Step duration in seconds (> 0).
        coeffs: Optional precomputed :func:`kibam_coefficients` for the
            state's ``(k, c, dt)``; looked up (memoized) when omitted.

    Returns:
        The new state.  Well contents are clamped to [0, well capacity]
        after the analytic update so numerical dust never leaks out.
    """
    if coeffs is None:
        coeffs = kibam_coefficients(state.k, state.c, dt)
    k, c = state.k, state.c
    y1, y2 = state.available_c, state.bound_c
    y0 = y1 + y2
    i = current_a

    ekt = coeffs.ekt
    one_m_ekt = coeffs.one_m_ekt
    ramp = coeffs.kdt_m_one_m_ekt
    # Closed-form constant-current solution (Manwell & McGowan 1993).
    new_y1 = (y1 * ekt
              + (y0 * k * c - i) * one_m_ekt / k
              - i * c * ramp / k)
    new_y2 = (y2 * ekt
              + y0 * (1.0 - c) * one_m_ekt
              - i * (1.0 - c) * ramp / k)

    # Branchy clamps (identical to min(max(...)) including NaN flow-through)
    # keep numerical dust inside [0, well capacity] without builtin calls.
    available_capacity = state.capacity_c * c
    bound_capacity = state.capacity_c * (1.0 - c)
    if new_y1 < 0.0:
        new_y1 = 0.0
    elif new_y1 > available_capacity:
        new_y1 = available_capacity
    if new_y2 < 0.0:
        new_y2 = 0.0
    elif new_y2 > bound_capacity:
        new_y2 = bound_capacity
    return _evolved(state, new_y1, new_y2)


def kibam_max_discharge_current(state: KiBaMState, dt: float,
                                coeffs: Optional[KiBaMCoefficients] = None,
                                ) -> float:
    """Largest constant current that keeps the available well >= 0 over dt.

    Derived by setting y1(dt) = 0 in the closed-form solution and solving
    for the current.
    """
    if coeffs is None:
        coeffs = kibam_coefficients(state.k, state.c, dt)
    k, c = state.k, state.c
    y1 = state.available_c
    y0 = y1 + state.bound_c

    ekt = coeffs.ekt
    one_m_ekt = coeffs.one_m_ekt
    denominator = coeffs.denominator
    if denominator <= 0.0:
        return 0.0
    numerator = k * y1 * ekt + y0 * k * c * one_m_ekt
    return max(0.0, numerator / denominator)


def kibam_max_charge_current(state: KiBaMState, dt: float,
                             coeffs: Optional[KiBaMCoefficients] = None,
                             ) -> float:
    """Largest constant charging current that keeps the available well
    at or below its capacity over ``dt`` seconds.

    The mirror image of :func:`kibam_max_discharge_current`: charging fills
    the available well first, and acceptance drops as it saturates — the
    physical root of the battery's limited valley-energy absorption that
    the REU experiments (Figure 12d) hinge on.
    """
    if coeffs is None:
        coeffs = kibam_coefficients(state.k, state.c, dt)
    k, c = state.k, state.c
    y1 = state.available_c
    y0 = y1 + state.bound_c
    available_capacity = state.capacity_c * c

    ekt = coeffs.ekt
    one_m_ekt = coeffs.one_m_ekt
    denominator = coeffs.denominator
    if denominator <= 0.0:
        return 0.0
    # Set y1(dt) = available_capacity with i = -current (charging).
    numerator = (available_capacity - y1 * ekt
                 - y0 * c * one_m_ekt) * k
    return max(0.0, numerator / denominator)
