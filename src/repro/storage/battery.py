"""Lead-acid battery model: KiBaM wells + Peukert drain + voltage physics.

The model reproduces the four battery weaknesses the paper's Section 1 and
3.1 enumerate, each traceable to a specific mechanism here:

1. *Limited cycle life* — telemetry feeds the Ah-throughput lifetime model
   (:mod:`repro.storage.lifetime`).
2. *Peukert's-law capacity loss at high current* — the well drain is scaled
   by ``(I / I_ref)^(pk - 1)`` on top of KiBaM's own rate-capacity effect.
3. *Charge-current ceiling* — ``max_charge_current_a`` plus the available
   well's saturation limit how fast valleys can be absorbed.
4. *Poor round-trip efficiency (~80%)* — coulombic losses on both legs plus
   real IR heating at the terminals.
"""

from __future__ import annotations

import math

from ..config import BatteryConfig
from ..errors import ConfigurationError
from ..units import ah_to_coulombs, clamp
from .device import EnergyStorageDevice, FlowResult
from .kibam import (
    KiBaMCoefficients,
    KiBaMState,
    kibam_coefficients,
    kibam_max_charge_current,
    kibam_max_discharge_current,
    kibam_step,
)

_EPSILON = 1e-12


class LeadAcidBattery(EnergyStorageDevice):
    """A lead-acid battery string exposing the common device protocol."""

    def __init__(self, config: BatteryConfig, name: str = "battery",
                 soc: float = 1.0) -> None:
        super().__init__(name)
        self.config = config
        self._age_fraction = 0.0
        # Single-slot cache: the engine steps with one fixed dt, so the
        # KiBaM exponentials are loop invariants (k and c never change,
        # even under aging — only capacity fades).
        self._step_coeffs: "KiBaMCoefficients | None" = None
        # Constants derived from the frozen config, hoisted out of the
        # per-tick property chains.
        self._config_nominal_j = config.nominal_energy_j
        self._mean_voltage = 0.5 * (config.nominal_voltage_v
                                    + config.empty_voltage_v)
        self._ocv_empty = config.empty_voltage_v
        self._ocv_span = config.nominal_voltage_v - config.empty_voltage_v
        self._aged_resistance = config.internal_resistance_ohm
        self._capacity_c = ah_to_coulombs(config.capacity_ah)
        self._state = KiBaMState.at_soc(
            capacity_c=self._capacity_c,
            c=config.kibam_c,
            k=config.kibam_k_per_s,
            soc=soc,
        )
        self.set_depth_of_discharge(config.rated_dod)

    # ------------------------------------------------------------------
    # Aging
    # ------------------------------------------------------------------

    @property
    def age_fraction(self) -> float:
        """Capacity fade applied so far (0 = fresh, 0.2 = 20% faded)."""
        return self._age_fraction

    def apply_aging(self, fade_fraction: float,
                    resistance_growth: float = 1.0) -> None:
        """Age the battery: shrink capacity and raise internal resistance.

        Section 5.3's motivation for online PAT optimization: "with the
        battery and SC aging, their ability of handling power mismatching
        will decline", so a table profiled on fresh hardware drifts out of
        date.  Lead-acid aging manifests as capacity fade (sulfation eats
        active material) plus rising internal resistance; by convention a
        battery is "dead" at ~20% fade.

        Args:
            fade_fraction: Total capacity fraction lost relative to the
                *fresh* battery (monotone; calling with a smaller value
                than the current age is rejected).
            resistance_growth: Multiplier on internal resistance per unit
                of fade (applied proportionally).
        """
        if not 0.0 <= fade_fraction < 1.0:
            raise ConfigurationError(
                f"fade fraction must lie in [0, 1), got {fade_fraction!r}")
        if fade_fraction < self._age_fraction:
            raise ConfigurationError("aging cannot be reversed")
        if resistance_growth < 1.0:
            raise ConfigurationError("resistance can only grow with age")
        soc = self._state.soc
        self._age_fraction = fade_fraction
        fresh_capacity_c = ah_to_coulombs(self.config.capacity_ah)
        self._capacity_c = fresh_capacity_c * (1.0 - fade_fraction)
        self._aged_resistance = (self.config.internal_resistance_ohm
                                 * (1.0 + (resistance_growth - 1.0)
                                    * fade_fraction))
        self._state = KiBaMState.at_soc(
            capacity_c=self._capacity_c,
            c=self.config.kibam_c,
            k=self.config.kibam_k_per_s,
            soc=min(soc, 1.0),
        )

    @property
    def internal_resistance_ohm(self) -> float:
        """Present internal resistance (grows with age)."""
        return self._aged_resistance

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def state(self) -> KiBaMState:
        """The underlying two-well charge distribution (read-only view)."""
        return self._state

    @property
    def nominal_energy_j(self) -> float:
        return self._config_nominal_j * (1.0 - self._age_fraction)

    @property
    def stored_energy_j(self) -> float:
        """Stored energy estimated from total charge at the mean voltage."""
        state = self._state
        return (state.available_c + state.bound_c) * self._mean_voltage

    def open_circuit_voltage(self) -> float:
        """OCV tracks the *available* well, giving transient sag and
        post-rest recovery bounce (Figure 5 behaviour)."""
        state = self._state
        # Inlined KiBaMState.available_fraction (same arithmetic).
        available_capacity = state.capacity_c * state.c
        fraction = min(1.0, max(0.0, state.available_c / available_capacity))
        return self._ocv_empty + self._ocv_span * fraction

    def _coeffs(self, dt: float) -> KiBaMCoefficients:
        """Memoized KiBaM step coefficients for this battery at ``dt``."""
        cached = self._step_coeffs
        if cached is not None and cached.dt == dt:
            return cached
        cached = kibam_coefficients(
            self.config.kibam_k_per_s, self.config.kibam_c, dt)
        self._step_coeffs = cached
        return cached

    # ------------------------------------------------------------------
    # Peukert helpers
    # ------------------------------------------------------------------

    def _peukert_multiplier(self, current_a: float) -> float:
        """Extra drain factor at currents above the rating current."""
        cfg = self.config
        if current_a <= cfg.reference_current_a or cfg.peukert_exponent == 1.0:
            return 1.0
        ratio = current_a / cfg.reference_current_a
        return ratio ** (cfg.peukert_exponent - 1.0)

    def _invert_peukert(self, effective_current_a: float) -> float:
        """Terminal current whose Peukert-scaled drain equals the argument."""
        cfg = self.config
        if (effective_current_a <= cfg.reference_current_a
                or cfg.peukert_exponent == 1.0):
            return effective_current_a
        # effective = I^pk / I_ref^(pk-1)  =>  I = (effective * I_ref^(pk-1))^(1/pk)
        pk = cfg.peukert_exponent
        return (effective_current_a
                * cfg.reference_current_a ** (pk - 1.0)) ** (1.0 / pk)

    # ------------------------------------------------------------------
    # Electrical limits
    # ------------------------------------------------------------------

    def _discharge_current_limit(self, dt: float) -> float:
        """Terminal-current ceiling from all discharge constraints."""
        cfg = self.config
        v_oc = self.open_circuit_voltage()

        # (1) Terminal voltage must stay above the brown-out floor.
        resistance = self.internal_resistance_ohm
        if resistance > _EPSILON:
            i_voltage = max(
                0.0,
                (v_oc - cfg.min_terminal_voltage_v)
                / resistance)
        else:
            i_voltage = math.inf

        # (2) The available well must not empty within the step
        #     (Peukert-scaled drain).
        i_kibam_effective = kibam_max_discharge_current(
            self._state, dt, self._coeffs(dt))
        i_kibam_effective *= self.config.discharge_efficiency
        i_kibam = self._invert_peukert(i_kibam_effective)

        # (3) Total charge must not sink below the DoD floor.
        floor_c = self._soc_floor * self._capacity_c
        budget_c = max(0.0, self._state.total_c - floor_c)
        i_floor_effective = budget_c / dt * self.config.discharge_efficiency
        i_floor = self._invert_peukert(i_floor_effective)

        return max(0.0, min(i_voltage, i_kibam, i_floor))

    def max_discharge_power_w(self, dt: float) -> float:
        self._validate_flow_args(0.0, dt)
        i_limit = self._discharge_current_limit(dt)
        v_oc = self.open_circuit_voltage()
        r = self.internal_resistance_ohm
        # P(I) = I (V_oc - I R) is concave; cap at the max-power current.
        if r > _EPSILON:
            i_limit = min(i_limit, v_oc / (2.0 * r))
        return max(0.0, i_limit * (v_oc - i_limit * r))

    def max_charge_power_w(self, dt: float) -> float:
        self._validate_flow_args(0.0, dt)
        i_limit = self._charge_current_limit(dt)
        v_oc = self.open_circuit_voltage()
        r = self.internal_resistance_ohm
        return max(0.0, i_limit * (v_oc + i_limit * r))

    def _charge_efficiency_now(self) -> float:
        """Charge efficiency degraded by top-of-charge gassing.

        Above ``gassing_soc_threshold`` a growing share of the charging
        current electrolyses water instead of converting active material —
        the physical reason shallow near-full cycling (the small-peak
        BaOnly pattern) wastes energy.
        """
        cfg = self.config
        soc = self.soc
        if soc <= cfg.gassing_soc_threshold:
            return cfg.charge_efficiency
        span = 1.0 - cfg.gassing_soc_threshold
        fraction = min(1.0, (soc - cfg.gassing_soc_threshold) / span)
        return cfg.charge_efficiency * (1.0 - cfg.gassing_penalty * fraction)

    def _charge_current_limit(self, dt: float) -> float:
        cfg = self.config
        efficiency = self._charge_efficiency_now()
        # Wells gain I * efficiency; constraints are on the well side.
        i_kibam = (kibam_max_charge_current(self._state, dt, self._coeffs(dt))
                   / efficiency)
        headroom_c = max(0.0, self._capacity_c - self._state.total_c)
        i_headroom = headroom_c / dt / efficiency
        return max(0.0, min(cfg.max_charge_current_a, i_kibam, i_headroom))

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------

    def _discharge_current_for_power(self, power_w: float) -> float:
        """Solve I (V_oc - I R) = P for the smaller root."""
        v_oc = self.open_circuit_voltage()
        r = self.internal_resistance_ohm
        if r <= _EPSILON:
            return power_w / v_oc
        discriminant = v_oc * v_oc - 4.0 * r * power_w
        if discriminant < 0.0:
            return v_oc / (2.0 * r)  # max-power point; request unmeetable
        return (v_oc - math.sqrt(discriminant)) / (2.0 * r)

    def _charge_current_for_power(self, power_w: float) -> float:
        """Solve I (V_oc + I R) = P for the positive root."""
        v_oc = self.open_circuit_voltage()
        r = self.internal_resistance_ohm
        if r <= _EPSILON:
            return power_w / v_oc
        discriminant = v_oc * v_oc + 4.0 * r * power_w
        return (-v_oc + math.sqrt(discriminant)) / (2.0 * r)

    def discharge(self, power_w: float, dt: float) -> FlowResult:
        self._validate_flow_args(power_w, dt)
        v_oc = self.open_circuit_voltage()
        # Inlined is_depleted: usable = max(0, stored - floor) and
        # max(0, x) <= 1e-9  <=>  x <= 1e-9.
        state = self._state
        stored = (state.available_c + state.bound_c) * self._mean_voltage
        nominal = self._config_nominal_j * (1.0 - self._age_fraction)
        if power_w <= 0.0 or stored - self._soc_floor * nominal <= 1e-9:
            result = self._noflow(power_w, v_oc)
            self.telemetry.record_discharge(result, 0.0, dt)
            self._state = kibam_step(self._state, 0.0, dt, self._coeffs(dt))
            return result

        r = self.internal_resistance_ohm
        i_request = self._discharge_current_for_power(power_w)
        i_limit = self._discharge_current_limit(dt)
        current = min(i_request, i_limit)
        if current <= _EPSILON:
            result = self._noflow(power_w, v_oc)
            self.telemetry.record_discharge(result, 0.0, dt)
            self._state = kibam_step(self._state, 0.0, dt, self._coeffs(dt))
            return result

        terminal_voltage = v_oc - current * r
        achieved_w = current * terminal_voltage
        limited = achieved_w < power_w - 1e-6

        drain_current = (current * self._peukert_multiplier(current)
                         / self.config.discharge_efficiency)
        ir_loss_j = current * current * r * dt
        internal_loss_j = (drain_current - current) * terminal_voltage * dt
        result = FlowResult(
            requested_w=power_w,
            achieved_w=achieved_w,
            energy_j=achieved_w * dt,
            loss_j=ir_loss_j + max(0.0, internal_loss_j),
            terminal_voltage_v=terminal_voltage,
            limited=limited,
            current_a=current,
        )
        self._state = kibam_step(self._state, drain_current, dt,
                                 self._coeffs(dt))
        self.telemetry.record_discharge(result, current, dt)
        return result

    def charge(self, power_w: float, dt: float) -> FlowResult:
        self._validate_flow_args(power_w, dt)
        v_oc = self.open_circuit_voltage()
        # Inlined is_full (headroom = max(0, nominal - stored) <= 1e-9).
        state = self._state
        stored = (state.available_c + state.bound_c) * self._mean_voltage
        nominal = self._config_nominal_j * (1.0 - self._age_fraction)
        if power_w <= 0.0 or nominal - stored <= 1e-9:
            result = self._noflow(power_w, v_oc)
            self.telemetry.record_charge(result, 0.0, dt)
            self._state = kibam_step(self._state, 0.0, dt, self._coeffs(dt))
            return result

        r = self.internal_resistance_ohm
        i_request = self._charge_current_for_power(power_w)
        i_limit = self._charge_current_limit(dt)
        current = min(i_request, i_limit)
        if current <= _EPSILON:
            result = self._noflow(power_w, v_oc)
            self.telemetry.record_charge(result, 0.0, dt)
            self._state = kibam_step(self._state, 0.0, dt, self._coeffs(dt))
            return result

        terminal_voltage = v_oc + current * r
        achieved_w = current * terminal_voltage
        limited = achieved_w < power_w - 1e-6

        stored_current = current * self._charge_efficiency_now()
        ir_loss_j = current * current * r * dt
        coulombic_loss_j = (current - stored_current) * v_oc * dt
        result = FlowResult(
            requested_w=power_w,
            achieved_w=achieved_w,
            energy_j=achieved_w * dt,
            loss_j=ir_loss_j + coulombic_loss_j,
            terminal_voltage_v=terminal_voltage,
            limited=limited,
            current_a=current,
        )
        self._state = kibam_step(self._state, -stored_current, dt,
                                 self._coeffs(dt))
        self.telemetry.record_charge(result, current, dt)
        return result

    def rest(self, dt: float) -> None:
        self._validate_flow_args(0.0, dt)
        self._state = kibam_step(self._state, 0.0, dt, self._coeffs(dt))
        self.telemetry.record_rest(dt)

    def reset(self, soc: float = 1.0) -> None:
        """Restore state of charge and clear telemetry (aging persists)."""
        self._state = KiBaMState.at_soc(
            capacity_c=self._capacity_c,
            c=self.config.kibam_c,
            k=self.config.kibam_k_per_s,
            soc=clamp(soc, 0.0, 1.0),
        )
        self.telemetry = type(self.telemetry)()
