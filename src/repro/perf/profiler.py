"""Wall-clock tick profiler for the simulation engine.

This module is the only place the engine's instrumentation touches a
clock, and it deliberately lives *outside* the deterministic packages
(``sim``/``core``/``storage``/``runner``, see RPR201): the engine never
imports it, it only accepts a profiler instance by injection, so a
profiled run and an unprofiled run execute identical simulation
arithmetic.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict

from .stats import PerfReport, PhaseStat


class TickProfiler:
    """Accumulates per-phase wall time across the engine's tick loop.

    Usage: pass an instance as ``Simulation(..., profiler=...)``.  The
    engine calls :meth:`begin_tick` at the top of every tick and
    :meth:`mark` after each phase; phase cost is the elapsed time since
    the previous mark.  :meth:`report` freezes everything into a
    :class:`~repro.perf.stats.PerfReport`.
    """

    def __init__(self) -> None:
        self._phase_s: Dict[str, float] = {}
        self._counters: Dict[str, int] = {}
        self.ticks = 0
        # The run clock starts at the first tick, not at construction, so
        # setup work (trace generation, device builds) is not billed to
        # the engine.
        self._run_start: float | None = None
        self._last = 0.0

    def begin_tick(self) -> None:
        self.ticks += 1
        self._last = perf_counter()
        if self._run_start is None:
            self._run_start = self._last

    def mark(self, phase: str) -> None:
        now = perf_counter()
        self._phase_s[phase] = (
            self._phase_s.get(phase, 0.0) + (now - self._last))
        self._last = now

    def count(self, name: str, value: int = 1) -> None:
        """Add to a named deterministic event counter."""
        self._counters[name] = self._counters.get(name, 0) + value

    def report(self) -> PerfReport:
        if self._run_start is None:
            wall_s = 0.0
        else:
            wall_s = perf_counter() - self._run_start
        profiled_s = sum(self._phase_s.values())
        denominator = profiled_s if profiled_s > 0 else 1.0
        phases = tuple(
            PhaseStat(name=name, total_s=total_s,
                      share=total_s / denominator)
            for name, total_s in self._phase_s.items())
        counters = tuple(sorted(self._counters.items()))
        ticks_per_s = self.ticks / wall_s if wall_s > 0 else 0.0
        return PerfReport(
            wall_s=wall_s,
            ticks=self.ticks,
            ticks_per_s=ticks_per_s,
            phases=phases,
            counters=counters,
        )
