"""Machine-readable engine performance reports.

These dataclasses are the *data* half of the profiler: pure records with
no clock access, safe to import from the deterministic simulation
packages (``repro.sim`` attaches one to :class:`~repro.sim.results.RunResult`
when a run is profiled).  The clock-touching half lives in
:mod:`repro.perf.profiler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class PhaseStat:
    """Accumulated wall time for one named phase of the tick loop."""

    name: str
    total_s: float
    #: Fraction of the profiled (per-phase) time spent in this phase.
    share: float


@dataclass(frozen=True)
class PerfReport:
    """One run's engine performance measurement.

    Attributes:
        wall_s: Wall-clock duration of the whole ``Simulation.run`` call.
        ticks: Number of simulated ticks executed.
        ticks_per_s: Throughput (``ticks / wall_s``).
        phases: Per-phase wall-time breakdown, in loop order.
        counters: Deterministic event counters (name, value), sorted by
            name — relay skips, scheduler fast-path hits, and so on.
    """

    wall_s: float
    ticks: int
    ticks_per_s: float
    phases: Tuple[PhaseStat, ...]
    counters: Tuple[Tuple[str, int], ...]

    def format_table(self) -> str:
        """Human-readable breakdown for ``python -m repro run --profile``."""
        lines = [
            f"engine: {self.ticks} ticks in {self.wall_s:.3f} s wall "
            f"({self.ticks_per_s:,.0f} ticks/s)",
            f"{'phase':<14} {'time':>10} {'share':>8}",
        ]
        for phase in self.phases:
            lines.append(
                f"{phase.name:<14} {phase.total_s:>8.4f} s "
                f"{phase.share:>7.1%}")
        if self.counters:
            lines.append("counters:")
            for name, value in self.counters:
                lines.append(f"  {name} = {value}")
        return "\n".join(lines)
