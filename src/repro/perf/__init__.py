"""Engine performance instrumentation (profiler + report records).

Split in two so determinism holds: :mod:`repro.perf.stats` is pure data
(importable anywhere, including the deterministic sim/core/storage
packages), while :mod:`repro.perf.profiler` owns the wall clock and is
only ever *injected* into the engine, never imported by it.
"""

from .profiler import TickProfiler
from .stats import PerfReport, PhaseStat

__all__ = ["PerfReport", "PhaseStat", "TickProfiler"]
