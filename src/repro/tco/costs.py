"""Storage-technology cost database and the prototype cost breakdown.

Reproduces the Figure 4 comparison (initial $/kWh versus amortized
$/kWh/cycle) and the Figure 15(a) prototype cost breakdown.  Numbers come
from the sources the paper cites ([34], [37], [38]): lead-acid 100-300
$/kWh at 2-3k cycles, SCs 10-30 k$/kWh at hundreds of thousands of cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import TCOError


@dataclass(frozen=True)
class StorageTechnology:
    """Cost/cycle characteristics of one storage technology.

    Attributes:
        name: Technology label.
        initial_cost_low / initial_cost_high: Purchase cost band ($/kWh).
        cycle_life: Rated deep cycles.
        round_trip_efficiency: Typical energy efficiency.
    """

    name: str
    initial_cost_low: float
    initial_cost_high: float
    cycle_life: float
    round_trip_efficiency: float
    amortization_cycles: float | None = None

    def __post_init__(self) -> None:
        if not 0 < self.initial_cost_low <= self.initial_cost_high:
            raise TCOError(f"{self.name}: invalid cost band")
        if self.cycle_life <= 0:
            raise TCOError(f"{self.name}: cycle life must be positive")
        if not 0 < self.round_trip_efficiency <= 1:
            raise TCOError(f"{self.name}: efficiency must lie in (0, 1]")
        if (self.amortization_cycles is not None
                and self.amortization_cycles <= 0):
            raise TCOError(f"{self.name}: amortization cycles must be > 0")

    @property
    def effective_amortization_cycles(self) -> float:
        """Cycles over which the purchase is amortized.

        For SCs the physical cycle capability (~1M) outlives the calendar;
        the paper's Figure 4 amortizes over the cycles a datacenter can
        actually run within the device's calendar life, which is what
        lands the SC near 0.4 $/kWh/cycle.
        """
        if self.amortization_cycles is not None:
            return self.amortization_cycles
        return self.cycle_life

    @property
    def initial_cost_mid(self) -> float:
        """Midpoint of the purchase-cost band ($/kWh)."""
        return 0.5 * (self.initial_cost_low + self.initial_cost_high)


#: The Figure 4 technology set.
STORAGE_TECHNOLOGIES: Dict[str, StorageTechnology] = {
    "lead-acid": StorageTechnology(
        name="lead-acid", initial_cost_low=100.0, initial_cost_high=300.0,
        cycle_life=2500.0, round_trip_efficiency=0.78),
    "nicd": StorageTechnology(
        name="nicd", initial_cost_low=800.0, initial_cost_high=1500.0,
        cycle_life=3000.0, round_trip_efficiency=0.72),
    "li-ion": StorageTechnology(
        name="li-ion", initial_cost_low=900.0, initial_cost_high=2500.0,
        cycle_life=4500.0, round_trip_efficiency=0.92),
    "supercapacitor": StorageTechnology(
        name="supercapacitor", initial_cost_low=10_000.0,
        initial_cost_high=30_000.0, cycle_life=500_000.0,
        round_trip_efficiency=0.93,
        # ~10 cycles/day over a 12-year calendar life.
        amortization_cycles=45_000.0),
}


def amortized_cost_per_kwh_cycle(technology: StorageTechnology,
                                 use_high: bool = False) -> float:
    """$/kWh/cycle: purchase cost amortized over the cycle life.

    Figure 4's punchline: despite a 30-100x purchase-price gap, the SC's
    enormous cycle life brings its amortized cost near NiCd/Li-ion.
    """
    cost = (technology.initial_cost_high if use_high
            else technology.initial_cost_low)
    return cost / technology.effective_amortization_cycles


@dataclass(frozen=True)
class CostBreakdown:
    """Component costs of a HEB node (Figure 15a).

    All values in dollars.  ``esd`` covers batteries + SCs together, the
    dominant component ("account for 55% of the overall expenditure").
    """

    esd: float
    relays_and_switches: float
    sensors: float
    controller: float
    converters: float
    cabinet_and_wiring: float

    @property
    def total(self) -> float:
        return (self.esd + self.relays_and_switches + self.sensors
                + self.controller + self.converters
                + self.cabinet_and_wiring)

    def fractions(self) -> Dict[str, float]:
        """Component shares of the total (sums to 1)."""
        total = self.total
        if total <= 0:
            raise TCOError("breakdown total must be positive")
        return {
            "esd": self.esd / total,
            "relays_and_switches": self.relays_and_switches / total,
            "sensors": self.sensors / total,
            "controller": self.controller / total,
            "converters": self.converters / total,
            "cabinet_and_wiring": self.cabinet_and_wiring / total,
        }


def prototype_cost_breakdown() -> Tuple[CostBreakdown, float]:
    """The paper's prototype economics (Figure 15a).

    Returns the breakdown and the server cost it is compared against:
    "a HEB node powers six servers and its total cost is less than 16% of
    the server total cost (approximate $4,850)".
    """
    breakdown = CostBreakdown(
        esd=425.0,               # ~55% of the node
        relays_and_switches=90.0,
        sensors=55.0,
        controller=105.0,
        converters=60.0,
        cabinet_and_wiring=38.0,
    )
    server_total_cost = 4850.0
    return breakdown, server_total_cost
