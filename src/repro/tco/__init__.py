"""Economics of hybrid energy buffers (Section 7.6, Figure 15)."""

from .costs import (
    StorageTechnology,
    STORAGE_TECHNOLOGIES,
    amortized_cost_per_kwh_cycle,
    CostBreakdown,
    prototype_cost_breakdown,
)
from .roi import roi, roi_sweep, ROIPoint
from .peak_shaving import (
    PeakShavingScenario,
    RevenueSeries,
    peak_shaving_revenue,
    break_even_year,
    compare_peak_shaving,
)

__all__ = [
    "StorageTechnology",
    "STORAGE_TECHNOLOGIES",
    "amortized_cost_per_kwh_cycle",
    "CostBreakdown",
    "prototype_cost_breakdown",
    "roi",
    "roi_sweep",
    "ROIPoint",
    "PeakShavingScenario",
    "RevenueSeries",
    "peak_shaving_revenue",
    "break_even_year",
    "compare_peak_shaving",
]
