"""Return-on-investment of hybrid buffers vs CAP-EX (Figure 15b).

Section 7.6: the cost of procuring hybrid buffers to sustain ``e`` hours
of peaks is ``e * C_HEB`` ($/W) against an avoided infrastructure CAP-EX
of ``C_cap`` ($/W)::

    ROI = (C_cap - e * C_HEB) / (e * C_HEB)

with each cost amortized over its lifetime (battery 4 years, SC 12 years,
infrastructure 12 years).  We follow the prototype's capacity split —
batteries 70%, SCs 30% (see DESIGN.md on the paper's x/y naming
inconsistency in this section).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..config import TCOConfig
from ..errors import TCOError


@dataclass(frozen=True)
class ROIPoint:
    """One cell of the Figure 15(b) sweep."""

    capex_per_watt: float
    peak_duration_h: float
    roi: float

    @property
    def worthwhile(self) -> bool:
        """Positive ROI: the buffer beats building out infrastructure."""
        return self.roi > 0.0


def hybrid_cost_per_watt_hour(config: TCOConfig,
                              amortized: bool = True) -> float:
    """C_HEB: $ per watt of load sustained for one hour.

    One watt for one hour needs 1 Wh = 1/1000 kWh of storage.  With
    ``amortized=True`` each technology's purchase cost is divided by its
    lifetime relative to the infrastructure lifetime, matching the paper's
    like-for-like amortization.
    """
    battery_fraction = 1.0 - config.sc_fraction
    battery = config.battery_cost_per_kwh * battery_fraction
    supercap = config.supercap_cost_per_kwh * config.sc_fraction
    if amortized:
        horizon = config.infrastructure_lifetime_years
        battery *= horizon / config.battery_lifetime_years
        supercap *= horizon / config.supercap_lifetime_years
    return (battery + supercap) / 1000.0


def roi(capex_per_watt: float, peak_duration_h: float,
        config: TCOConfig | None = None,
        amortized: bool = True) -> float:
    """ROI of provisioning a hybrid buffer instead of ``capex_per_watt``
    of extra power infrastructure, for peaks of ``peak_duration_h``."""
    if capex_per_watt <= 0:
        raise TCOError("capex must be positive")
    if peak_duration_h <= 0:
        raise TCOError("peak duration must be positive")
    config = config or TCOConfig()
    buffer_cost = peak_duration_h * hybrid_cost_per_watt_hour(
        config, amortized=amortized)
    return (capex_per_watt - buffer_cost) / buffer_cost


def roi_sweep(capex_values: Sequence[float] = tuple(range(2, 21, 2)),
              peak_durations_h: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
              config: TCOConfig | None = None,
              amortized: bool = True) -> List[ROIPoint]:
    """The full Figure 15(b) grid: C_cap in [2, 20] $/W x peak durations."""
    if not capex_values or not peak_durations_h:
        raise TCOError("sweep needs at least one capex and one duration")
    config = config or TCOConfig()
    points = []
    for capex in capex_values:
        for duration in peak_durations_h:
            points.append(ROIPoint(
                capex_per_watt=float(capex),
                peak_duration_h=float(duration),
                roi=roi(capex, duration, config, amortized=amortized),
            ))
    return points
