"""Eight-year peak-shaving revenue comparison (Figure 15c).

The scenario: a 100 kW datacenter with a 20 kWh buffer shaves demand-charge
peaks (tariff 12 $/kW-month).  The paper states the harvested benefit is
"proportional to" a scheme's energy efficiency and availability gains, and
that batteries must be replaced at end of life — which is exactly why
BaFirst, despite hybrid hardware, nets *less* than BaOnly ("if not
appropriately managed, leveraging hybrid energy buffer may be less
profitable").

Model (per scheme):

* gross annual revenue = shavable_kw x tariff x 12 x utilization
  x ee_gain x availability_gain, where shavable_kw = battery+SC energy /
  peak window;
* costs = battery capex (replaced every ``battery_life_years``) + SC
  capex once (SC cycle life outlasts the horizon);
* cumulative net(t) = revenue·t − costs incurred by t; the break-even is
  the first crossing.

SC sizing note: the deployed SC is a *power* device — 30% of the shaving
power for minutes — so its energy share (default 1.35 kWh at the paper's
10 k$/kWh) is far below 30% of 20 kWh.  Buying 6 kWh of SC at 10 k$/kWh
could never break even in 3.7 years, so the paper's stated break-evens
pin down this sizing (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import TCOError


@dataclass(frozen=True)
class SchemeEconomics:
    """Per-scheme economics inputs.

    ``ee_gain`` and ``availability_gain`` are the measured Figure 12
    improvements over BaOnly; the product scales the shaving revenue
    ("proportional to the harvested peak shaving benefit", Section 7.6).
    """

    name: str
    ee_gain: float
    availability_gain: float
    battery_kwh: float
    sc_kwh: float
    battery_life_years: float

    @property
    def effectiveness(self) -> float:
        return self.ee_gain * self.availability_gain


@dataclass(frozen=True)
class PeakShavingScenario:
    """The Figure 15(c) scenario constants."""

    datacenter_kw: float = 100.0
    buffer_kwh: float = 20.0
    peak_tariff_per_kw_month: float = 12.0
    peak_window_h: float = 1.0
    base_utilization: float = 0.99
    battery_cost_per_kwh: float = 300.0
    supercap_cost_per_kwh: float = 10_000.0
    horizon_years: float = 8.0

    def __post_init__(self) -> None:
        for name in ("datacenter_kw", "buffer_kwh",
                     "peak_tariff_per_kw_month", "peak_window_h",
                     "battery_cost_per_kwh", "supercap_cost_per_kwh",
                     "horizon_years"):
            if getattr(self, name) <= 0:
                raise TCOError(f"{name} must be positive")
        if not 0 < self.base_utilization <= 1:
            raise TCOError("base_utilization must lie in (0, 1]")


#: Default per-scheme economics, with gains taken from the Figure 12
#: headline results (EE +39.7%, downtime −41% for HEB-D) and battery
#: lifetimes consistent with Figure 12(c)'s ordering.
DEFAULT_SCHEMES: Dict[str, SchemeEconomics] = {
    "BaOnly": SchemeEconomics(
        name="BaOnly", ee_gain=1.00, availability_gain=1.00,
        battery_kwh=20.0, sc_kwh=0.0, battery_life_years=4.0),
    "BaFirst": SchemeEconomics(
        name="BaFirst", ee_gain=1.02, availability_gain=1.10,
        battery_kwh=14.0, sc_kwh=1.35, battery_life_years=4.8),
    "SCFirst": SchemeEconomics(
        name="SCFirst", ee_gain=1.25, availability_gain=1.02,
        battery_kwh=14.0, sc_kwh=1.35, battery_life_years=12.0),
    "HEB": SchemeEconomics(
        name="HEB", ee_gain=1.397, availability_gain=1.21,
        battery_kwh=14.0, sc_kwh=1.35, battery_life_years=12.0),
}


@dataclass(frozen=True)
class RevenueSeries:
    """Year-by-year cumulative economics for one scheme."""

    scheme: str
    years: tuple
    cumulative_revenue: tuple
    cumulative_cost: tuple

    @property
    def cumulative_net(self) -> tuple:
        return tuple(r - c for r, c in
                     zip(self.cumulative_revenue, self.cumulative_cost))

    @property
    def final_net(self) -> float:
        return self.cumulative_net[-1]

    @property
    def average_annual_net(self) -> float:
        return self.final_net / self.years[-1]


def annual_revenue(scheme: SchemeEconomics,
                   scenario: PeakShavingScenario) -> float:
    """Gross shaving revenue per year for one scheme."""
    shavable_kw = scenario.buffer_kwh / scenario.peak_window_h
    per_kw_year = scenario.peak_tariff_per_kw_month * 12.0
    return (shavable_kw * per_kw_year * scenario.base_utilization
            * scheme.effectiveness)


def capex(scheme: SchemeEconomics, scenario: PeakShavingScenario) -> float:
    """Upfront buffer cost for one scheme."""
    return (scheme.battery_kwh * scenario.battery_cost_per_kwh
            + scheme.sc_kwh * scenario.supercap_cost_per_kwh)


def peak_shaving_revenue(scheme: SchemeEconomics,
                         scenario: Optional[PeakShavingScenario] = None,
                         samples_per_year: int = 12) -> RevenueSeries:
    """Cumulative revenue/cost series over the scenario horizon.

    Battery replacements land at integer multiples of the battery life
    strictly inside the horizon; the SC purchase is once (its cycle life
    exceeds the horizon for every scheme).
    """
    scenario = scenario or PeakShavingScenario()
    if samples_per_year <= 0:
        raise TCOError("samples_per_year must be positive")
    revenue_rate = annual_revenue(scheme, scenario)
    battery_capex = scheme.battery_kwh * scenario.battery_cost_per_kwh
    initial = capex(scheme, scenario)

    num_samples = int(round(scenario.horizon_years * samples_per_year)) + 1
    years: List[float] = []
    cum_revenue: List[float] = []
    cum_cost: List[float] = []
    for i in range(num_samples):
        t = i / samples_per_year
        replacements = int(t / scheme.battery_life_years)
        # A replacement exactly at the horizon is never bought.
        if replacements and t >= scenario.horizon_years:
            replacements = int((t - 1e-9) / scheme.battery_life_years)
        years.append(t)
        cum_revenue.append(revenue_rate * t)
        cum_cost.append(initial + replacements * battery_capex)
    return RevenueSeries(scheme=scheme.name, years=tuple(years),
                         cumulative_revenue=tuple(cum_revenue),
                         cumulative_cost=tuple(cum_cost))


def break_even_year(series: RevenueSeries) -> Optional[float]:
    """Year after which the cumulative net stays non-negative forever.

    A battery replacement can push an already-profitable deployment back
    underwater (BaOnly dips negative again at its year-4 replacement), so
    the meaningful break-even is the *final* crossing, which is the one
    Figure 15(c) reports.
    """
    last_negative = None
    for year, net in zip(series.years, series.cumulative_net):
        if net < 0:
            last_negative = year
    if last_negative is None:
        return series.years[1] if len(series.years) > 1 else None
    if last_negative >= series.years[-1]:
        return None
    for year, net in zip(series.years, series.cumulative_net):
        if year > last_negative and net >= 0:
            return year
    return None


def compare_peak_shaving(scenario: Optional[PeakShavingScenario] = None,
                         schemes: Optional[Sequence[SchemeEconomics]] = None,
                         ) -> Dict[str, Dict[str, float]]:
    """The Figure 15(c) comparison table.

    Returns per-scheme break-even year, 8-year net, average annual net,
    and the net ratio versus BaOnly (the paper's ">1.9X revenue" number).
    """
    scenario = scenario or PeakShavingScenario()
    schemes = list(schemes) if schemes else list(DEFAULT_SCHEMES.values())
    table: Dict[str, Dict[str, float]] = {}
    baseline_net = None
    for scheme in schemes:
        series = peak_shaving_revenue(scheme, scenario)
        breakeven = break_even_year(series)
        row = {
            "break_even_year": breakeven if breakeven is not None
            else float("inf"),
            "final_net": series.final_net,
            "average_annual_net": series.average_annual_net,
        }
        table[scheme.name] = row
        if scheme.name == "BaOnly":
            baseline_net = series.final_net
    if baseline_net and baseline_net > 0:
        for row in table.values():
            row["net_vs_baonly"] = row["final_net"] / baseline_net
    return table
