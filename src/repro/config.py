"""Configuration dataclasses for every subsystem, plus paper-prototype presets.

Each config is a frozen dataclass validated on construction.  The
``prototype_*`` factory functions reproduce the scale-down prototype from
Section 6 of the paper: six low-power servers (30 W idle / 70 W peak), a
260 W utility budget, a 24 V lead-acid battery string, Maxwell-class 16 V /
600 F supercapacitor modules, and 10-minute control slots.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Tuple

from .errors import ConfigurationError
from .units import kwh_to_joules, minutes, wh_to_joules


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class BatteryConfig:
    """Parameters of a lead-acid battery string modelled with KiBaM.

    Attributes:
        nominal_voltage_v: Open-circuit voltage of the full string at 100% SoC.
        empty_voltage_v: Open-circuit voltage at 0% SoC (linear interpolation
            between the two approximates the lead-acid OCV curve).
        capacity_ah: Nominal 20-hour-rate capacity of the string.
        internal_resistance_ohm: Lumped series resistance; produces the sharp
            terminal-voltage drop under large currents seen in Figure 5.
        kibam_c: KiBaM fraction of charge in the available well (0 < c < 1).
        kibam_k_per_s: KiBaM inter-well rate constant (1/s).  Smaller values
            make the recovery effect (Section 3.1) more pronounced.
        peukert_exponent: Peukert constant; 1.0 disables the effect.
        reference_current_a: Current at which ``capacity_ah`` is rated
            (the 20-hour rate by convention).
        charge_efficiency: Coulombic+conversion efficiency while charging
            (below the gassing region).
        discharge_efficiency: Efficiency while discharging.  The product of
            the two is the round-trip efficiency (~0.80 for lead acid).
        gassing_soc_threshold: State of charge above which charge
            acceptance degrades (electrolysis/gassing dominates the top of
            charge in lead-acid chemistry).  Shallow cycles that hover
            near full — exactly the small-peak BaOnly usage pattern —
            therefore recharge very inefficiently.
        gassing_penalty: Fractional charge-efficiency loss at 100% SoC
            (linearly ramped from the threshold).
        max_charge_current_a: Charging ceiling ("batteries cannot be
            re-charged very fast", Section 1); the source of the REU gap.
        min_terminal_voltage_v: Below this the served load browns out.
        rated_cycles: Cycle life at ``rated_dod`` used by the Ah-throughput
            lifetime model.
        rated_dod: Depth of discharge at which ``rated_cycles`` is specified.
    """

    nominal_voltage_v: float = 25.6
    empty_voltage_v: float = 21.0
    capacity_ah: float = 4.4
    internal_resistance_ohm: float = 0.15
    kibam_c: float = 0.62
    kibam_k_per_s: float = 4.5e-4
    peukert_exponent: float = 1.125
    reference_current_a: float = 2.0
    charge_efficiency: float = 0.87
    discharge_efficiency: float = 0.98
    gassing_soc_threshold: float = 0.8
    gassing_penalty: float = 0.3
    max_charge_current_a: float = 1.1
    min_terminal_voltage_v: float = 19.0
    rated_cycles: float = 2500.0
    rated_dod: float = 0.8

    def __post_init__(self) -> None:
        _require(self.nominal_voltage_v > self.empty_voltage_v > 0,
                 "battery voltages must satisfy nominal > empty > 0")
        _require(self.capacity_ah > 0, "battery capacity must be positive")
        _require(self.internal_resistance_ohm >= 0,
                 "internal resistance cannot be negative")
        _require(0 < self.kibam_c < 1, "kibam_c must lie in (0, 1)")
        _require(self.kibam_k_per_s > 0, "kibam_k_per_s must be positive")
        _require(self.peukert_exponent >= 1.0,
                 "peukert exponent below 1 is unphysical")
        _require(self.reference_current_a > 0,
                 "reference current must be positive")
        _require(0 < self.charge_efficiency <= 1, "charge efficiency in (0,1]")
        _require(0 < self.discharge_efficiency <= 1,
                 "discharge efficiency in (0,1]")
        _require(0 < self.gassing_soc_threshold < 1,
                 "gassing threshold must lie in (0, 1)")
        _require(0 <= self.gassing_penalty < 1,
                 "gassing penalty must lie in [0, 1)")
        _require(self.max_charge_current_a > 0,
                 "max charge current must be positive")
        _require(0 < self.rated_dod <= 1, "rated DoD in (0, 1]")
        _require(self.rated_cycles > 0, "rated cycles must be positive")

    @property
    def nominal_energy_j(self) -> float:
        """Nominal stored energy of the string at 100% SoC (joules)."""
        mean_voltage = 0.5 * (self.nominal_voltage_v + self.empty_voltage_v)
        return wh_to_joules(self.capacity_ah * mean_voltage)

    def scaled_to_energy(self, energy_j: float) -> "BatteryConfig":
        """Return a copy rescaled (capacity and current limits) to hold
        ``energy_j`` joules at 100% SoC, preserving the C-rate limits."""
        _require(energy_j > 0, "target energy must be positive")
        factor = energy_j / self.nominal_energy_j
        return dataclasses.replace(
            self,
            capacity_ah=self.capacity_ah * factor,
            reference_current_a=self.reference_current_a * factor,
            max_charge_current_a=self.max_charge_current_a * factor,
            internal_resistance_ohm=self.internal_resistance_ohm / factor,
        )


@dataclass(frozen=True)
class SupercapConfig:
    """Parameters of a supercapacitor module bank (Maxwell 16 V / 600 F class).

    Attributes:
        capacitance_f: Total capacitance of the bank.
        max_voltage_v: Fully charged voltage.
        min_voltage_v: Converter cut-off voltage; charge below it is unusable.
        esr_ohm: Equivalent series resistance; sized so the round trip lands
            in the 90-95% band measured in Section 3.1.
        max_charge_current_a: Practical converter ceiling.  Very large by
            default — SCs charge "without the limitation of upper-bound
            charging current" relative to batteries.
        rated_cycles: Cycle life (two to three orders beyond batteries).
    """

    capacitance_f: float = 600.0
    max_voltage_v: float = 16.0
    min_voltage_v: float = 6.0
    esr_ohm: float = 0.05
    max_charge_current_a: float = 200.0
    rated_cycles: float = 1_000_000.0

    def __post_init__(self) -> None:
        _require(self.capacitance_f > 0, "capacitance must be positive")
        _require(self.max_voltage_v > self.min_voltage_v >= 0,
                 "SC voltages must satisfy max > min >= 0")
        _require(self.esr_ohm >= 0, "ESR cannot be negative")
        _require(self.max_charge_current_a > 0,
                 "max charge current must be positive")
        _require(self.rated_cycles > 0, "rated cycles must be positive")

    @property
    def nominal_energy_j(self) -> float:
        """Usable energy between min and max voltage (joules)."""
        return 0.5 * self.capacitance_f * (
            self.max_voltage_v ** 2 - self.min_voltage_v ** 2)

    def scaled_to_energy(self, energy_j: float) -> "SupercapConfig":
        """Return a copy with capacitance rescaled to hold ``energy_j``."""
        _require(energy_j > 0, "target energy must be positive")
        factor = energy_j / self.nominal_energy_j
        return dataclasses.replace(
            self,
            capacitance_f=self.capacitance_f * factor,
            max_charge_current_a=self.max_charge_current_a * factor,
            esr_ohm=self.esr_ohm / factor,
        )


@dataclass(frozen=True)
class ServerConfig:
    """Power model of one server (Section 6 prototype nodes).

    Attributes:
        idle_power_w: Measured idle draw (30 W in the paper).
        peak_power_w: Measured peak draw (70 W in the paper).
        low_frequency_ghz / high_frequency_ghz: The two ondemand-governor
            operating points used to construct small/large peak groups.
        restart_energy_j: Energy wasted by one off/on cycle; Section 3.1
            notes this can consume "nearly half of the recovered energy".
        restart_duration_s: Time a server stays unavailable after shutdown.
    """

    idle_power_w: float = 30.0
    peak_power_w: float = 70.0
    low_frequency_ghz: float = 1.3
    high_frequency_ghz: float = 1.8
    restart_energy_j: float = 3000.0
    restart_duration_s: float = 60.0

    def __post_init__(self) -> None:
        _require(0 <= self.idle_power_w < self.peak_power_w,
                 "server power must satisfy 0 <= idle < peak")
        _require(0 < self.low_frequency_ghz <= self.high_frequency_ghz,
                 "frequencies must satisfy 0 < low <= high")
        _require(self.restart_energy_j >= 0, "restart energy >= 0")
        _require(self.restart_duration_s >= 0, "restart duration >= 0")


@dataclass(frozen=True)
class PredictorConfig:
    """Holt-Winters triple exponential smoothing parameters (Section 5.2)."""

    alpha: float = 0.45
    beta: float = 0.12
    gamma: float = 0.25
    season_length: int = 12

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma"):
            value = getattr(self, name)
            _require(0 < value < 1, f"{name} must lie in (0, 1)")
        _require(self.season_length >= 2, "season length must be >= 2")


@dataclass(frozen=True)
class PATConfig:
    """Power Allocation Table parameters (Sections 5.2-5.3).

    Attributes:
        energy_quantum_j: Rounding quantum for SC/battery energy keys when
            coarse-graining new entries (Figure 10, line 14).
        power_quantum_w: Rounding quantum for the power-demand key.
        delta_r: The Δr load-ratio correction step (1% by default).
        max_entries: Safety bound on table growth.
    """

    energy_quantum_j: float = wh_to_joules(10.0)
    power_quantum_w: float = 20.0
    delta_r: float = 0.01
    max_entries: int = 4096

    def __post_init__(self) -> None:
        _require(self.energy_quantum_j > 0, "energy quantum must be positive")
        _require(self.power_quantum_w > 0, "power quantum must be positive")
        _require(0 < self.delta_r < 1, "delta_r must lie in (0, 1)")
        _require(self.max_entries > 0, "max_entries must be positive")


@dataclass(frozen=True)
class ControllerConfig:
    """hControl decision parameters (Section 5).

    Attributes:
        slot_seconds: Control interval (10 minutes by default).
        small_peak_power_w: ΔPM at or below which a predicted peak counts as
            "small" and is handled by the two-tier SC-first policy.
        small_peak_duration_s: Predicted peak duration threshold; both the
            height and duration criteria must hold for the small-peak path.
        dod_battery / dod_supercap: Depth-of-discharge ceilings enforced by
            the controller (the capacity-planning knob of Section 7.5).
    """

    slot_seconds: float = minutes(10)
    small_peak_power_w: float = 60.0
    small_peak_duration_s: float = minutes(5)
    dod_battery: float = 0.8
    dod_supercap: float = 1.0

    def __post_init__(self) -> None:
        _require(self.slot_seconds > 0, "slot length must be positive")
        _require(self.small_peak_power_w >= 0, "small-peak power >= 0")
        _require(self.small_peak_duration_s >= 0, "small-peak duration >= 0")
        _require(0 < self.dod_battery <= 1, "battery DoD in (0, 1]")
        _require(0 < self.dod_supercap <= 1, "supercap DoD in (0, 1]")


@dataclass(frozen=True)
class ClusterConfig:
    """The server cluster and its utility supply.

    Attributes:
        num_servers: Cluster size (six in the prototype).
        server: Per-server power model.
        utility_budget_w: Maximum draw from the utility/renewable feed
            (260 W for six servers in the paper).
        converter_efficiency: Buffer-to-server delivery efficiency; models
            the DC/AC inverter of the cluster-level deployment (Figure 8b).
    """

    num_servers: int = 6
    server: ServerConfig = field(default_factory=ServerConfig)
    utility_budget_w: float = 260.0
    converter_efficiency: float = 0.95

    def __post_init__(self) -> None:
        _require(self.num_servers > 0, "cluster needs at least one server")
        _require(self.utility_budget_w >= 0, "utility budget >= 0")
        _require(0 < self.converter_efficiency <= 1,
                 "converter efficiency in (0, 1]")

    @property
    def peak_demand_w(self) -> float:
        """Worst-case cluster demand (all servers at peak)."""
        return self.num_servers * self.server.peak_power_w


@dataclass(frozen=True)
class SimulationConfig:
    """Discrete-time engine parameters."""

    tick_seconds: float = 1.0
    seed: int = 20150613  # ISCA'15 opening day; fixed for reproducibility.

    def __post_init__(self) -> None:
        _require(self.tick_seconds > 0, "tick length must be positive")


@dataclass(frozen=True)
class HybridBufferConfig:
    """Sizing of the hybrid pool: total capacity and SC share.

    The paper compares systems of *equal total capacity* with an initial
    SC:battery ratio of 3:7 (Section 7).
    """

    total_energy_j: float = wh_to_joules(150.0)
    sc_fraction: float = 0.3
    battery: BatteryConfig = field(default_factory=BatteryConfig)
    supercap: SupercapConfig = field(default_factory=SupercapConfig)

    def __post_init__(self) -> None:
        _require(self.total_energy_j > 0, "total energy must be positive")
        _require(0 <= self.sc_fraction <= 1, "sc_fraction in [0, 1]")

    @property
    def sc_energy_j(self) -> float:
        return self.total_energy_j * self.sc_fraction

    @property
    def battery_energy_j(self) -> float:
        return self.total_energy_j * (1.0 - self.sc_fraction)

    def with_ratio(self, sc_fraction: float) -> "HybridBufferConfig":
        """Return a copy with a different SC share, same total capacity."""
        return dataclasses.replace(self, sc_fraction=sc_fraction)

    def with_total_energy(self, total_energy_j: float) -> "HybridBufferConfig":
        """Return a copy with a different total capacity, same SC share."""
        return dataclasses.replace(self, total_energy_j=total_energy_j)


@dataclass(frozen=True)
class TCOConfig:
    """Economic constants used by Section 7.6.

    Costs are in dollars; energies in kWh at this boundary because that is
    how the paper (and vendors) quote them.
    """

    battery_cost_per_kwh: float = 300.0
    supercap_cost_per_kwh: float = 10_000.0
    battery_lifetime_years: float = 4.0
    supercap_lifetime_years: float = 12.0
    infrastructure_lifetime_years: float = 12.0
    peak_tariff_per_kw: float = 12.0
    datacenter_power_kw: float = 100.0
    buffer_energy_kwh: float = 20.0
    sc_fraction: float = 0.3

    def __post_init__(self) -> None:
        _require(self.battery_cost_per_kwh > 0, "battery cost must be > 0")
        _require(self.supercap_cost_per_kwh > 0, "supercap cost must be > 0")
        for name in ("battery_lifetime_years", "supercap_lifetime_years",
                     "infrastructure_lifetime_years", "peak_tariff_per_kw",
                     "datacenter_power_kw", "buffer_energy_kwh"):
            _require(getattr(self, name) > 0, f"{name} must be positive")
        _require(0 <= self.sc_fraction <= 1, "sc_fraction in [0, 1]")

    @property
    def hybrid_cost_per_kwh(self) -> float:
        """Blended $/kWh of the hybrid buffer (C_HEB components)."""
        return (self.battery_cost_per_kwh * (1.0 - self.sc_fraction)
                + self.supercap_cost_per_kwh * self.sc_fraction)


def prototype_battery() -> BatteryConfig:
    """The 24 V lead-acid string of the prototype (Figure 11, item 7/10)."""
    return BatteryConfig()


def prototype_supercap() -> SupercapConfig:
    """A Maxwell 16 V / 600 F class module bank (Figure 11, item 9)."""
    return SupercapConfig()


def prototype_cluster() -> ClusterConfig:
    """Six 30/70 W servers behind a 260 W utility budget (Section 6)."""
    return ClusterConfig()


def prototype_buffer(sc_fraction: float = 0.3,
                     total_energy_wh: float = 150.0) -> HybridBufferConfig:
    """Equal-capacity hybrid pool at the paper's default 3:7 SC:BA ratio."""
    return HybridBufferConfig(
        total_energy_j=wh_to_joules(total_energy_wh),
        sc_fraction=sc_fraction,
    )


def prototype_controller() -> ControllerConfig:
    """Default hControl settings (10-minute slots, Section 5.2)."""
    return ControllerConfig()


def paper_tco() -> TCOConfig:
    """The 100 kW / 20 kWh / 12 $/kW scenario of Figure 15(c)."""
    return TCOConfig()


# Figure 15(b) sweeps infrastructure CAP-EX over this range ($/W).
CAPEX_RANGE_DOLLARS_PER_WATT: Tuple[float, float] = (2.0, 20.0)
