"""Fault injection and resilience: deterministic chaos for the simulator.

The paper's headline claims (99.9% less downtime, 58% longer battery
lifetime) only matter if the controller stays safe when the world
misbehaves.  This package models the misbehavior: a seedable, frozen
:class:`FaultSchedule` of typed events — utility brownouts and outages,
battery aging and open-circuit, supercapacitor ESR drift and leakage,
converter dropout, sensor noise — consumed by the engine through a
:class:`FaultInjector`.

Schedules are pure data riding inside a
:class:`~repro.runner.RunRequest`, so fault scenarios are content-
addressed, cacheable, and parallelizable like any other run, and an
empty schedule is bit-identical to no schedule at all.

See ``docs/resilience.md`` for the fault taxonomy, the JSON spec format,
the graceful-degradation semantics, and the invariants the chaos test
suite enforces.
"""

from .events import (
    BASELINE_CLASS,
    EVENT_REGISTRY,
    EVENT_TYPES,
    FAULT_CLASSES,
    BatteryCellAging,
    BatteryOpenCircuit,
    ConverterDropout,
    FaultEvent,
    SensorNoise,
    SupercapESRDrift,
    SupercapLeakage,
    UtilityBrownout,
    UtilityOutage,
    WindowedFault,
    event_from_dict,
)
from .injector import FaultInjector
from .schedule import (
    FaultSchedule,
    dump_schedule,
    load_schedule,
    schedule_from_dict,
)

__all__ = [
    "BASELINE_CLASS",
    "EVENT_REGISTRY",
    "EVENT_TYPES",
    "FAULT_CLASSES",
    "FaultEvent",
    "WindowedFault",
    "UtilityBrownout",
    "UtilityOutage",
    "BatteryCellAging",
    "BatteryOpenCircuit",
    "SupercapESRDrift",
    "SupercapLeakage",
    "ConverterDropout",
    "SensorNoise",
    "event_from_dict",
    "FaultInjector",
    "FaultSchedule",
    "schedule_from_dict",
    "load_schedule",
    "dump_schedule",
]
