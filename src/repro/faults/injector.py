"""The deterministic fault-state machine the engine consults every tick.

A :class:`FaultInjector` turns a frozen
:class:`~repro.faults.schedule.FaultSchedule` into the per-tick answers
the engine needs:

* :meth:`begin_tick` — advance to a simulation time: apply due step
  events (battery aging, ESR drift) to the buffers, drain active SC
  leakage, and recompute the active-fault snapshot.
* :meth:`transform_budget` — the supply-side view (brownouts/outages).
* :attr:`sc_available` / :attr:`battery_available` — the power-path view
  (open circuits, converter dropout).
* :meth:`observe` — the sensing view: perturb a slot observation's
  telemetry under active sensor noise and stamp availability flags.
* :meth:`attribute_downtime` — downtime bookkeeping per fault class,
  surfaced in :class:`~repro.sim.metrics.RunMetrics.fault_downtime_s`.

Determinism: all stochastic draws come from one private
``numpy.random.Generator`` seeded by the schedule, and draws happen
*only* when a sensor-noise window is active — an injector built from an
empty schedule performs no draws and no mutations, so a zero-fault run
is bit-identical to a run with no injector at all (asserted by test).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.policies.base import SlotObservation
from ..errors import SimulationError
from ..storage.bank import DeviceBank
from ..storage.battery import LeadAcidBattery
from ..storage.device import EnergyStorageDevice
from ..storage.supercap import Supercapacitor
from .events import (
    BASELINE_CLASS,
    BatteryCellAging,
    BatteryOpenCircuit,
    ConverterDropout,
    SensorNoise,
    SupercapESRDrift,
    SupercapLeakage,
    UtilityBrownout,
    UtilityOutage,
)
from .schedule import FaultSchedule


def _leaf_devices(device: Optional[EnergyStorageDevice]
                  ) -> List[EnergyStorageDevice]:
    """Flatten a pool (single device or relay-connected bank) to leaves."""
    if device is None:
        return []
    if isinstance(device, DeviceBank):
        leaves: List[EnergyStorageDevice] = []
        for member in device.devices:
            leaves.extend(_leaf_devices(member))
        return leaves
    return [device]


class FaultInjector:
    """Executes one :class:`FaultSchedule` against one simulation run.

    An injector is single-use: it carries applied-event and downtime
    state, so every run must construct its own (``execute_request``
    does).  All mutation happens through :meth:`begin_tick`, which the
    engine calls exactly once per tick in time order.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._rng = np.random.default_rng(schedule.seed)
        self._events = schedule.events
        self._applied = [False] * len(schedule.events)
        self._fade_applied = 0.0
        self._now_s = -1.0

        # Snapshot of the world at the current tick, rebuilt by begin_tick.
        self._budget_fraction = 1.0
        self._battery_open = False
        self._converter_down = False
        self._sensor_sigma = 0.0
        self._active_classes: Tuple[str, ...] = ()

        self._downtime_by_class: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Tick protocol
    # ------------------------------------------------------------------

    def begin_tick(self, now_s: float, dt: float, buffers) -> None:
        """Advance the fault state to ``now_s`` and act on the buffers.

        Args:
            now_s: Simulation time of the tick start (must not go
                backwards; the injector is single-use).
            dt: Tick length in seconds.
            buffers: The run's :class:`~repro.sim.buffers.HybridBuffers`
                (step events and leakage mutate its devices).
        """
        if now_s < self._now_s:
            raise SimulationError(
                f"fault injector stepped backwards: {now_s} < {self._now_s}")
        self._now_s = now_s

        budget_fraction = 1.0
        battery_open = False
        converter_down = False
        sensor_sigma = 0.0
        leakage_w = 0.0
        active: List[str] = []

        for index, event in enumerate(self._events):
            if not event.active_at(now_s):
                continue
            active.append(event.kind)
            if event.persistent and not self._applied[index]:
                self._apply_step(event, buffers)
                self._applied[index] = True
            if isinstance(event, UtilityOutage):
                budget_fraction = 0.0
            elif isinstance(event, UtilityBrownout):
                budget_fraction = min(budget_fraction,
                                      event.budget_fraction)
            elif isinstance(event, BatteryOpenCircuit):
                battery_open = True
            elif isinstance(event, ConverterDropout):
                converter_down = True
            elif isinstance(event, SensorNoise):
                sensor_sigma = max(sensor_sigma, event.sigma_fraction)
            elif isinstance(event, SupercapLeakage):
                leakage_w += event.leakage_w

        self._budget_fraction = budget_fraction
        self._battery_open = battery_open
        self._converter_down = converter_down
        self._sensor_sigma = sensor_sigma
        # Dedupe while preserving canonical order.
        self._active_classes = tuple(dict.fromkeys(active))

        if leakage_w > 0.0:
            for device in _leaf_devices(buffers.sc):
                if isinstance(device, Supercapacitor):
                    device.apply_leakage(leakage_w, dt)

    def _apply_step(self, event, buffers) -> None:
        """Apply a persistent degradation step to the buffer devices."""
        if isinstance(event, BatteryCellAging):
            # Compose repeated aging steps: each fades the *remaining*
            # capacity, so total fade is monotone and stays below 1.
            self._fade_applied = (
                self._fade_applied
                + event.fade_fraction * (1.0 - self._fade_applied))
            for device in _leaf_devices(buffers.battery):
                if isinstance(device, LeadAcidBattery):
                    device.apply_aging(self._fade_applied,
                                       event.resistance_growth)
        elif isinstance(event, SupercapESRDrift):
            for device in _leaf_devices(buffers.sc):
                if isinstance(device, Supercapacitor):
                    device.apply_esr_drift(event.esr_multiplier)

    # ------------------------------------------------------------------
    # Per-tick queries (valid until the next begin_tick)
    # ------------------------------------------------------------------

    @property
    def sc_available(self) -> bool:
        """Whether the SC pool is reachable this tick."""
        return not self._converter_down

    @property
    def battery_available(self) -> bool:
        """Whether the battery pool is reachable this tick."""
        return not (self._converter_down or self._battery_open)

    @property
    def active_classes(self) -> Tuple[str, ...]:
        """Fault classes in force this tick (canonical order, deduped)."""
        return self._active_classes

    def transform_budget(self, budget_w: float) -> float:
        """The supply budget after active brownouts/outages."""
        if self._budget_fraction >= 1.0:
            return budget_w
        return budget_w * self._budget_fraction

    def observe(self, observation: SlotObservation) -> SlotObservation:
        """The controller's (possibly corrupted) view of an observation.

        Under active sensor noise the realized peak/valley telemetry of
        the previous slot is perturbed multiplicatively and the
        observation is flagged ``predictor_corrupted``; pool-availability
        flags always reflect the current tick.  With no sensing or
        power-path fault active, the observation is returned unchanged
        (same object).
        """
        sc_ok = self.sc_available
        battery_ok = self.battery_available
        sigma = self._sensor_sigma
        if sigma <= 0.0 and sc_ok and battery_ok:
            return observation

        changes: Dict[str, object] = {
            "sc_available": sc_ok,
            "battery_available": battery_ok,
        }
        if sigma > 0.0:
            peak_gain = max(0.0, 1.0 + sigma * self._rng.standard_normal())
            valley_gain = max(0.0, 1.0 + sigma * self._rng.standard_normal())
            noisy_peak = observation.last_peak_w * peak_gain
            noisy_valley = min(noisy_peak,
                               observation.last_valley_w * valley_gain)
            changes["last_peak_w"] = noisy_peak
            changes["last_valley_w"] = noisy_valley
            changes["predictor_corrupted"] = True
        return dataclasses.replace(observation, **changes)

    # ------------------------------------------------------------------
    # Downtime attribution
    # ------------------------------------------------------------------

    def attribute_downtime(self, delta_s: float) -> None:
        """Charge newly-accrued downtime to the active fault classes.

        Downtime accrued while ``n`` fault classes are active is split
        evenly among them; downtime with no fault active is charged to
        the ``"baseline"`` bucket.  The buckets therefore always sum to
        the run's total downtime.
        """
        if delta_s <= 0.0:
            return
        classes = self._active_classes or (BASELINE_CLASS,)
        share = delta_s / len(classes)
        for kind in classes:
            self._downtime_by_class[kind] = (
                self._downtime_by_class.get(kind, 0.0) + share)

    def downtime_by_class(self) -> Dict[str, float]:
        """Per-fault-class downtime attribution so far (sorted by class)."""
        return {kind: self._downtime_by_class[kind]
                for kind in sorted(self._downtime_by_class)}
