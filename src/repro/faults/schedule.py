"""Fault schedules: an ordered, canonical plan of what goes wrong when.

A :class:`FaultSchedule` is pure frozen data — a tuple of
:class:`~repro.faults.events.FaultEvent` plus the RNG seed the stochastic
faults (sensor noise) draw from.  It rides inside a
:class:`~repro.runner.RunRequest`, so fault scenarios inherit everything
the runner gives ordinary runs: content-addressed caching, process-pool
fan-out, and bit-for-bit serial/parallel equivalence.

Construction canonicalizes the event order (by start time, then kind,
then field values), so two schedules describing the same physical
scenario always produce the same cache key regardless of how their event
lists were assembled.

The on-disk spec format (``python -m repro run --faults spec.json``)::

    {
      "seed": 7,
      "events": [
        {"kind": "outage", "start_s": 1800.0, "duration_s": 120.0},
        {"kind": "brownout", "start_s": 3600.0, "duration_s": 600.0,
         "budget_fraction": 0.6},
        {"kind": "battery_aging", "start_s": 0.0, "fade_fraction": 0.15}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Tuple, Union

from ..errors import FaultSpecError
from .events import FaultEvent, event_from_dict


def _canonical_order(events: Iterable[FaultEvent]) -> Tuple[FaultEvent, ...]:
    """Deterministic event order: start time, kind, then field values."""
    return tuple(sorted(events,
                        key=lambda e: (e.start_s, e.kind,
                                       sorted(e.to_dict().items()))))


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, canonically-ordered fault scenario.

    Attributes:
        events: The fault events, sorted canonically on construction.
        seed: Seed of the schedule's private RNG (sensor noise draws);
            independent from the workload seed so noise realizations can
            be varied without changing the demand trace.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise FaultSpecError(
                    f"schedule events must be FaultEvent instances, "
                    f"got {type(event).__name__}")
        object.__setattr__(self, "events",
                           _canonical_order(self.events))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, *events: FaultEvent, seed: int = 0) -> "FaultSchedule":
        """Build a schedule from events given as positional arguments."""
        return cls(events=tuple(events), seed=seed)

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """The fault-free schedule (injecting it is a provable no-op)."""
        return cls()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def classes_present(self) -> Tuple[str, ...]:
        """The distinct fault-class names in the schedule, sorted."""
        return tuple(sorted({event.kind for event in self.events}))

    def last_start_s(self) -> float:
        """Start time of the latest event (0.0 for an empty schedule)."""
        if not self.events:
            return 0.0
        return max(event.start_s for event in self.events)

    # ------------------------------------------------------------------
    # Spec (de)serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible spec form (inverse of :func:`schedule_from_dict`)."""
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }


def schedule_from_dict(payload: Dict[str, Any]) -> FaultSchedule:
    """Build a schedule from its spec dict.

    Raises:
        FaultSpecError: On a malformed document or any bad event.
    """
    if not isinstance(payload, dict):
        raise FaultSpecError(f"fault schedule spec must be an object, "
                             f"got {type(payload).__name__}")
    unknown = sorted(set(payload) - {"seed", "events"})
    if unknown:
        raise FaultSpecError(
            f"unknown fault schedule keys: {', '.join(unknown)}")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise FaultSpecError(f"schedule seed must be an integer, "
                             f"got {seed!r}")
    raw_events = payload.get("events", [])
    if not isinstance(raw_events, list):
        raise FaultSpecError("schedule 'events' must be a list")
    events = tuple(event_from_dict(item) for item in raw_events)
    return FaultSchedule(events=events, seed=seed)


def load_schedule(path: Union[str, Path]) -> FaultSchedule:
    """Read a JSON fault-schedule spec from disk.

    Raises:
        FaultSpecError: On unreadable files, invalid JSON, or bad specs.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise FaultSpecError(
            f"cannot read fault schedule {str(path)!r}: {error}") from error
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise FaultSpecError(
            f"invalid JSON in fault schedule {str(path)!r}: "
            f"{error}") from error
    return schedule_from_dict(payload)


def dump_schedule(schedule: FaultSchedule, path: Union[str, Path]) -> None:
    """Write a schedule's JSON spec to disk (inverse of :func:`load_schedule`)."""
    Path(path).write_text(
        json.dumps(schedule.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
