"""Typed fault events: everything that can go wrong, as frozen data.

The taxonomy covers the disturbance classes the resilience literature
evaluates hybrid buffers under — supply-side sags and outages, storage
degradation, power-path hardware loss, and sensing corruption:

* :class:`UtilityBrownout` / :class:`UtilityOutage` — the source budget
  sags to a fraction of nominal (or to zero) for a window.
* :class:`BatteryCellAging` — a step of capacity fade plus internal-
  resistance growth (sulfation / cell dry-out), applied once and
  persistent for the rest of the run.
* :class:`BatteryOpenCircuit` — the battery bank drops off the bus for a
  window (blown fuse, contactor weld, BMS trip).
* :class:`SupercapESRDrift` — a persistent step multiplier on the SC
  pool's equivalent series resistance (electrolyte dry-out).
* :class:`SupercapLeakage` — a parasitic self-discharge draw on the SC
  pool for a window (dielectric leakage, balancing-resistor fault).
* :class:`ConverterDropout` — the shared buffer-side converter fails for
  a window: *neither* pool can serve or absorb power.
* :class:`SensorNoise` — the power telemetry feeding the predictor is
  corrupted by multiplicative Gaussian noise for a window; observations
  taken inside the window are flagged so policies can degrade.

Events are frozen dataclasses so a :class:`~repro.faults.FaultSchedule`
embedded in a :class:`~repro.runner.RunRequest` is hashable, picklable,
and canonically serializable — fault scenarios are content-addressed and
cacheable like any other run.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Tuple, Type

from ..errors import FaultSpecError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultSpecError(message)


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something goes wrong at ``start_s``.

    Subclasses without a duration are *step* events: their effect is
    applied once at ``start_s`` and persists to the end of the run.
    """

    #: Stable spec/reporting name of the fault class (subclass constant).
    kind: ClassVar[str] = "fault"
    #: Whether the event degrades the system permanently once started.
    persistent: ClassVar[bool] = True

    start_s: float

    def __post_init__(self) -> None:
        _require(self.start_s >= 0.0,
                 f"{self.kind}: start_s must be >= 0, got {self.start_s!r}")

    def active_at(self, now_s: float) -> bool:
        """Whether the fault affects the system at simulation time ``now_s``."""
        return now_s >= self.start_s

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible spec form (``kind`` plus the event's fields)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        for spec_field in fields(self):
            payload[spec_field.name] = getattr(self, spec_field.name)
        return payload


@dataclass(frozen=True)
class WindowedFault(FaultEvent):
    """A fault active over ``[start_s, start_s + duration_s)``."""

    persistent: ClassVar[bool] = False

    duration_s: float

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.duration_s >= 0.0,
                 f"{self.kind}: duration_s must be >= 0, "
                 f"got {self.duration_s!r}")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active_at(self, now_s: float) -> bool:
        return self.start_s <= now_s < self.end_s


@dataclass(frozen=True)
class UtilityBrownout(WindowedFault):
    """The utility (or solar) budget sags to a fraction of nominal.

    Attributes:
        budget_fraction: Remaining fraction of the nominal budget during
            the window, in [0, 1].  Multiple overlapping brownouts
            compose by taking the deepest sag.
    """

    kind: ClassVar[str] = "brownout"

    budget_fraction: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(0.0 <= self.budget_fraction <= 1.0,
                 f"{self.kind}: budget_fraction must lie in [0, 1], "
                 f"got {self.budget_fraction!r}")


@dataclass(frozen=True)
class UtilityOutage(WindowedFault):
    """The source feed disappears entirely for a window."""

    kind: ClassVar[str] = "outage"


@dataclass(frozen=True)
class BatteryCellAging(FaultEvent):
    """A step of battery capacity fade applied once at ``start_s``.

    Models sudden degradation (a cell shorting, deep sulfation found at
    inspection) rather than gradual calendar wear: the pool's capacity
    shrinks by ``fade_fraction`` of its fresh value and its internal
    resistance grows, both permanently.

    Attributes:
        fade_fraction: Capacity fraction lost relative to the fresh
            battery, in [0, 1).
        resistance_growth: Internal-resistance multiplier per unit of
            fade (>= 1); see
            :meth:`repro.storage.battery.LeadAcidBattery.apply_aging`.
    """

    kind: ClassVar[str] = "battery_aging"

    fade_fraction: float = 0.2
    resistance_growth: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(0.0 <= self.fade_fraction < 1.0,
                 f"{self.kind}: fade_fraction must lie in [0, 1), "
                 f"got {self.fade_fraction!r}")
        _require(self.resistance_growth >= 1.0,
                 f"{self.kind}: resistance_growth must be >= 1, "
                 f"got {self.resistance_growth!r}")


@dataclass(frozen=True)
class BatteryOpenCircuit(WindowedFault):
    """The battery bank is disconnected from the bus for a window."""

    kind: ClassVar[str] = "battery_open_circuit"


@dataclass(frozen=True)
class SupercapESRDrift(FaultEvent):
    """A persistent step multiplier on the SC pool's series resistance.

    Attributes:
        esr_multiplier: Multiplier on the configured ESR (>= 1); repeated
            events compose multiplicatively through the device hook,
            which only ever raises resistance.
    """

    kind: ClassVar[str] = "sc_esr_drift"

    esr_multiplier: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.esr_multiplier >= 1.0,
                 f"{self.kind}: esr_multiplier must be >= 1, "
                 f"got {self.esr_multiplier!r}")


@dataclass(frozen=True)
class SupercapLeakage(WindowedFault):
    """Parasitic self-discharge on the SC pool during a window.

    Attributes:
        leakage_w: Constant internal drain while active (>= 0); the
            energy leaves the store as loss, never as delivered output.
    """

    kind: ClassVar[str] = "sc_leakage"

    leakage_w: float = 5.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.leakage_w >= 0.0,
                 f"{self.kind}: leakage_w must be >= 0, "
                 f"got {self.leakage_w!r}")


@dataclass(frozen=True)
class ConverterDropout(WindowedFault):
    """The shared buffer-side converter fails: no pool can serve or charge."""

    kind: ClassVar[str] = "converter_dropout"


@dataclass(frozen=True)
class SensorNoise(WindowedFault):
    """Predictor observations are corrupted by multiplicative noise.

    Slot observations taken inside the window have their realized
    peak/valley telemetry perturbed by ``1 + sigma_fraction * N(0, 1)``
    (clipped non-negative) and are flagged ``predictor_corrupted`` so
    policies can fall back to prediction-free operation.

    Attributes:
        sigma_fraction: Relative standard deviation of the noise (>= 0).
    """

    kind: ClassVar[str] = "sensor_noise"

    sigma_fraction: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.sigma_fraction >= 0.0,
                 f"{self.kind}: sigma_fraction must be >= 0, "
                 f"got {self.sigma_fraction!r}")


#: Every concrete event type, in spec-registry order.
EVENT_TYPES: Tuple[Type[FaultEvent], ...] = (
    UtilityBrownout,
    UtilityOutage,
    BatteryCellAging,
    BatteryOpenCircuit,
    SupercapESRDrift,
    SupercapLeakage,
    ConverterDropout,
    SensorNoise,
)

#: Spec ``kind`` string -> event class.
EVENT_REGISTRY: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls for cls in EVENT_TYPES}

#: Every fault-class name, plus the attribution bucket for downtime that
#: accrues with no fault active.
BASELINE_CLASS = "baseline"
FAULT_CLASSES: Tuple[str, ...] = tuple(cls.kind for cls in EVENT_TYPES)


def event_from_dict(payload: Dict[str, Any]) -> FaultEvent:
    """Build one event from its spec dict (inverse of ``to_dict``).

    Raises:
        FaultSpecError: On a missing/unknown ``kind`` or bad fields.
    """
    if not isinstance(payload, dict):
        raise FaultSpecError(f"fault event spec must be an object, "
                             f"got {type(payload).__name__}")
    spec = dict(payload)
    kind = spec.pop("kind", None)
    if kind is None:
        raise FaultSpecError("fault event spec is missing 'kind'")
    event_cls = EVENT_REGISTRY.get(kind)
    if event_cls is None:
        known = ", ".join(sorted(EVENT_REGISTRY))
        raise FaultSpecError(f"unknown fault kind {kind!r}; known: {known}")
    try:
        return event_cls(**spec)
    except TypeError as error:
        raise FaultSpecError(
            f"bad fields for fault kind {kind!r}: {error}") from error
