"""Lane-parallel power-path components for the batched engine.

:class:`BatchFabric` replaces the scalar engine's apply/skip relay
machinery with unconditional per-tick diff counting: the scalar path
skips an apply only when the source tuple and cluster state are both
unchanged — ticks on which an apply would have moved zero relays — so
counting position changes every tick yields the identical
``total_switches`` per lane.

:class:`BatchIPDU` meters per-lane energy with the scalar IPDU's
outlet-order accumulation and keeps the same bounded ring of row
references (here (lanes, outlets) rows) for fidelity with the scalar
component; the engine never reads the ring back into results.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

#: Relay-position codes: UTILITY=0, STORAGE=1, OPEN=2.
POSITION_UTILITY = 0
POSITION_STORAGE = 1
POSITION_OPEN = 2

#: Source code -> relay position: UTILITY -> UTILITY, SUPERCAP/BATTERY
#: -> STORAGE, NONE -> OPEN (``Simulation._actuate_relays``).
_SOURCE_TO_POSITION = np.array(
    [POSITION_UTILITY, POSITION_STORAGE, POSITION_STORAGE, POSITION_OPEN],
    dtype=np.int8)


class BatchFabric:
    """N relay banks; every relay starts on UTILITY with zero switches."""

    def __init__(self, n: int, num_relays: int) -> None:
        self.positions = np.full((n, num_relays), POSITION_UTILITY,
                                 dtype=np.int8)
        self.switches = np.zeros(n, dtype=np.int64)
        self._last_sources: Optional[np.ndarray] = None

    def apply_sources(self, sources: np.ndarray) -> None:  # repro: noqa[RPR602] the batch twin actuates from the scheduler's source-code plan and maps sources->positions itself; the scalar 'positions' list has no lane analogue
        """Actuate from a (lanes, servers) source-code plan.

        Re-applying the identical *immutable* plan object (the
        scheduler's shared all-utility template) moves zero relays by
        construction, so the steady state costs one identity check.
        Mutable plan arrays never hit this path: a fresh array arrives
        each tick, and the remembered one is only trusted when it is
        read-only.
        """
        if (sources is self._last_sources
                and not sources.flags.writeable):
            return
        target = _SOURCE_TO_POSITION[sources]
        diff = target != self.positions
        if diff.any():
            self.switches += np.count_nonzero(diff, axis=1)
            self.positions = target
        self._last_sources = sources

    def total_switches_lane(self, lane: int) -> int:
        return int(self.switches[lane])


class BatchIPDU:
    """N intelligent PDUs metering (lanes, outlets) draws per tick."""

    def __init__(self, n: int, num_outlets: int,
                 history_limit: int) -> None:
        self.n = n
        self.num_outlets = num_outlets
        self.history_limit = history_limit
        self._ring_rows: List[Optional[np.ndarray]] = [None] * history_limit
        self._ring_t = [0.0] * history_limit
        self._ring_len = 0
        self._ring_next = 0
        self.energy_metered_j = np.zeros(n)

    def record_array(self, timestamp_s: float, draws_w: np.ndarray,
                     dt: float, total_w: Optional[np.ndarray] = None) -> None:
        """Meter one (lanes, outlets) sample, captured by reference.

        ``total_w`` may supply the outlet-order draw totals when the
        caller already holds them (the engine's precomputed per-tick
        demand totals, valid whenever draws equal raw demands).
        """
        slot = self._ring_next
        self._ring_rows[slot] = draws_w
        self._ring_t[slot] = timestamp_s
        slot += 1
        self._ring_next = slot if slot < self.history_limit else 0
        if self._ring_len < self.history_limit:
            self._ring_len += 1
        # Outlet-order accumulation, then the single * dt, exactly like
        # the scalar ``sum(draws_w.tolist()) * dt``.
        if total_w is None:
            total_w = np.zeros(self.n)
            for outlet in range(self.num_outlets):
                total_w = total_w + draws_w[:, outlet]
        self.energy_metered_j = self.energy_metered_j + total_w * dt


__all__ = ["BatchFabric", "BatchIPDU", "POSITION_OPEN", "POSITION_STORAGE",
           "POSITION_UTILITY"]
