"""Electrical-infrastructure substrate: switches, converters, topologies.

Behavioural models of the power-delivery hardware the prototype uses
(Figure 11): two-way relays and the switch fabric, the IPDU metering/
switching unit, AC/DC conversion stages, and the three energy-storage
topologies compared in Figure 7.
"""

from .components import (
    Relay,
    RelayPosition,
    SwitchFabric,
    IPDU,
    AutomaticTransferSwitch,
    PowerDistributionUnit,
)
from .converter import Converter, IDEAL_CONVERTER, DOUBLE_CONVERSION_UPS
from .topology import (
    TopologyKind,
    StorageTopology,
    centralized_topology,
    distributed_topology,
    heb_topology,
)
from .budget import ProvisioningLevel, mppu, capped_energy_fraction, provisioning_analysis

__all__ = [
    "Relay",
    "RelayPosition",
    "SwitchFabric",
    "IPDU",
    "AutomaticTransferSwitch",
    "PowerDistributionUnit",
    "Converter",
    "IDEAL_CONVERTER",
    "DOUBLE_CONVERSION_UPS",
    "TopologyKind",
    "StorageTopology",
    "centralized_topology",
    "distributed_topology",
    "heb_topology",
    "ProvisioningLevel",
    "mppu",
    "capped_energy_fraction",
    "provisioning_analysis",
]
