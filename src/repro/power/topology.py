"""The three energy-storage topologies of Figure 7.

Each topology is summarized by the properties Section 4.1 compares:

* the conversion chain between stored energy and server load (and hence
  the delivery efficiency of buffered energy);
* whether stored energy is shared across servers;
* whether the buffer can shave peaks at fine (per-server) granularity;
* scalability of the design.

The :class:`StorageTopology` objects are used by the architecture
comparison benchmark and by the TCO analysis; the simulation engine takes
just the resulting delivery efficiency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from .converter import (
    Converter,
    DC_AC_INVERTER,
    DOUBLE_CONVERSION_UPS,
    IDEAL_CONVERTER,
    SERVER_PSU,
)


class TopologyKind(enum.Enum):
    """The storage architectures compared in Figure 7."""

    CENTRALIZED = "centralized"
    DISTRIBUTED = "distributed"
    HEB = "heb"


@dataclass(frozen=True)
class StorageTopology:
    """Architecture summary used for cross-topology comparisons.

    Attributes:
        kind: Which Figure 7 architecture this is.
        name: Display name.
        discharge_path: Conversion chain from buffer to server load.
        charge_path: Conversion chain from source into the buffer.
        shares_energy: Whether servers can draw on a common pool.
        per_server_control: Whether individual servers can be switched
            between feeds (fine-grained peak shaving).
        always_online: Whether load power permanently flows through the
            storage system's converters (the centralized online UPS) even
            when no peak is being shaved.
        supports_heterogeneous: Whether batteries and SCs can be pooled.
    """

    kind: TopologyKind
    name: str
    discharge_path: Converter
    charge_path: Converter
    shares_energy: bool
    per_server_control: bool
    always_online: bool
    supports_heterogeneous: bool

    @property
    def delivery_efficiency(self) -> float:
        """Fraction of buffered energy that reaches server load."""
        return self.discharge_path.efficiency

    @property
    def round_trip_path_efficiency(self) -> float:
        """Conversion efficiency across charge and discharge paths
        (excludes the storage device's own internal losses)."""
        return self.charge_path.efficiency * self.discharge_path.efficiency

    def steady_state_overhead(self, load_w: float) -> float:
        """Power lost while *not* shaving peaks.

        Only the centralized online-UPS design pays this: the whole load
        continuously flows through its double conversion.
        """
        if load_w < 0:
            raise ConfigurationError("load cannot be negative")
        if not self.always_online:
            return 0.0
        return self.discharge_path.loss(load_w)


def centralized_topology() -> StorageTopology:
    """Figure 7(a): central online UPS between the ATS and the PDUs."""
    return StorageTopology(
        kind=TopologyKind.CENTRALIZED,
        name="Centralized UPS (Figure 7a)",
        discharge_path=DOUBLE_CONVERSION_UPS.chain(SERVER_PSU),
        charge_path=DOUBLE_CONVERSION_UPS,
        shares_energy=True,
        per_server_control=False,
        always_online=True,
        supports_heterogeneous=False,
    )


def distributed_topology() -> StorageTopology:
    """Figure 7(b): per-server / per-rack batteries (Google/Facebook)."""
    return StorageTopology(
        kind=TopologyKind.DISTRIBUTED,
        name="Distributed batteries (Figure 7b)",
        discharge_path=IDEAL_CONVERTER,  # battery sits after the PSU
        charge_path=SERVER_PSU,
        shares_energy=False,
        per_server_control=True,
        always_online=False,
        supports_heterogeneous=False,
    )


def heb_topology(rack_level: bool = True) -> StorageTopology:
    """Figure 7(c): pooled hybrid buffers behind per-server switches.

    Args:
        rack_level: Rack-level deployment (Figure 8c) delivers DC directly
            and avoids the inverter; cluster-level (Figure 8b) pays one
            DC/AC stage plus the server PSU.
    """
    if rack_level:
        discharge = IDEAL_CONVERTER
    else:
        discharge = DC_AC_INVERTER.chain(SERVER_PSU)
    return StorageTopology(
        kind=TopologyKind.HEB,
        name="HEB hybrid pool (Figure 7c, "
             + ("rack-level)" if rack_level else "cluster-level)"),
        discharge_path=discharge,
        charge_path=IDEAL_CONVERTER,
        shares_energy=True,
        per_server_control=True,
        always_online=False,
        supports_heterogeneous=True,
    )
