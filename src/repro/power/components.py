"""Power-path components: relays, switch fabric, IPDU, ATS, PDU.

These are behavioural models of the prototype hardware (Figure 11 items
1, 3 and the IPDU): they track state, meter energy, and enforce wiring
invariants, so experiments can count switching operations and metered
energy exactly as the real hControl does over SNMP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import SwitchError, TopologyError
from ..units import SECONDS_PER_HOUR


class RelayPosition(enum.Enum):
    """The two positions of a two-way relay (plus open)."""

    UTILITY = "utility"
    STORAGE = "storage"
    OPEN = "open"


class Relay:
    """One two-way relay feeding a single server.

    The prototype has "six two-way relays ... which can simultaneously
    connect to six servers".  Switching is counted because relay wear and
    switching transients are real operational concerns.
    """

    def __init__(self, relay_id: int,
                 position: RelayPosition = RelayPosition.UTILITY) -> None:
        self.relay_id = relay_id
        self.position = position
        self.switch_count = 0

    def switch_to(self, position: RelayPosition) -> bool:
        """Move the relay; returns True if the position actually changed."""
        if not isinstance(position, RelayPosition):
            raise SwitchError(f"invalid relay position: {position!r}")
        if position is self.position:
            return False
        self.position = position
        self.switch_count += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relay {self.relay_id} {self.position.value}>"


class SwitchFabric:
    """The bank of per-server relays the hControl actuates each slot."""

    def __init__(self, num_relays: int) -> None:
        if num_relays <= 0:
            raise TopologyError("fabric needs at least one relay")
        self.relays: List[Relay] = [Relay(i) for i in range(num_relays)]

    def apply(self, positions: List[RelayPosition]) -> int:
        """Actuate all relays; returns how many actually moved."""
        if len(positions) != len(self.relays):
            raise SwitchError(
                f"expected {len(self.relays)} positions, "
                f"got {len(positions)}")
        return sum(relay.switch_to(position)
                   for relay, position in zip(self.relays, positions))

    def total_switches(self) -> int:
        """Cumulative relay actuations (a wear/stability indicator)."""
        return sum(relay.switch_count for relay in self.relays)

    def positions(self) -> List[RelayPosition]:
        return [relay.position for relay in self.relays]


@dataclass
class MeterReading:
    """One per-second sample the IPDU reports to the controller."""

    timestamp_s: float
    per_outlet_w: Dict[int, float] = field(default_factory=dict)

    @property
    def total_w(self) -> float:
        return sum(self.per_outlet_w.values())


class IPDU:
    """Intelligent PDU: meters per-outlet power and switches outlets.

    "The IPDU can switch ON/OFF server power supply, report the server
    power draw every second and send it to the controller by SNMP commands
    over the Ethernet" (Section 6).  We keep a bounded history so long
    simulations do not grow without limit.
    """

    def __init__(self, num_outlets: int,
                 history_limit: int = int(SECONDS_PER_HOUR)) -> None:
        if num_outlets <= 0:
            raise TopologyError("IPDU needs at least one outlet")
        if history_limit <= 0:
            raise TopologyError("history limit must be positive")
        self.num_outlets = num_outlets
        self.outlet_on = [True] * num_outlets
        self.history_limit = history_limit
        # Bounded history as a ring of per-sample row arrays.  Appending
        # a reading stores the row by reference (the engine hands over a
        # fresh array or immutable view every tick), so per-tick metering
        # allocates nothing — this is on the engine's per-tick path.
        self._ring_rows: List[Optional[np.ndarray]] = [None] * history_limit
        self._ring_t = [0.0] * history_limit
        self._ring_len = 0
        self._ring_next = 0
        self._any_off = False
        self.energy_metered_j = 0.0

    def set_outlet(self, outlet: int, on: bool) -> None:
        """Switch one outlet."""
        if not 0 <= outlet < self.num_outlets:
            raise SwitchError(f"no such outlet: {outlet}")
        self.outlet_on[outlet] = on
        self._any_off = not all(self.outlet_on)

    def record_array(self, timestamp_s: float, draws_w: np.ndarray,
                     dt: float = 1.0) -> None:
        """Meter one full-width sample (index-aligned with outlets).

        The engine's fast path: ``draws_w`` is captured *by reference*
        (callers must hand over a fresh array or immutable view each
        sample and never mutate it afterwards).  Off outlets read zero
        regardless of demand, exactly as :meth:`record`.
        """
        if self._any_off:
            # Copy before zeroing so the caller's array is untouched.
            # The copy gets its own name: ``draws_w`` is aliased into
            # the ring by reference, so mutating under that name would
            # be (and reads as) a cache corruption.
            masked = np.array(draws_w, dtype=float)
            for outlet, on in enumerate(self.outlet_on):
                if not on:
                    masked[outlet] = 0.0
            draws_w = masked
        slot = self._ring_next
        self._ring_rows[slot] = draws_w
        self._ring_t[slot] = timestamp_s
        slot += 1
        self._ring_next = slot if slot < self.history_limit else 0
        if self._ring_len < self.history_limit:
            self._ring_len += 1
        # Element-by-element accumulation in outlet order keeps the
        # metered energy bit-identical to the historical dict path.
        self.energy_metered_j += sum(draws_w.tolist()) * dt

    def record(self, timestamp_s: float,
               per_outlet_w: Dict[int, float], dt: float = 1.0) -> MeterReading:
        """Meter one sample from a sparse per-outlet mapping.

        Off outlets read zero regardless of demand; unknown outlets are
        ignored; unmentioned outlets meter 0 W.
        """
        draws = np.zeros(self.num_outlets, dtype=float)
        for outlet, power in per_outlet_w.items():
            if 0 <= outlet < self.num_outlets:
                draws[outlet] = power
        self.record_array(timestamp_s, draws, dt)
        reading = self.latest()
        assert reading is not None
        return reading

    def _reading_at(self, index: int) -> MeterReading:
        slot = (self._ring_next - self._ring_len + index) % self.history_limit
        row = self._ring_rows[slot]
        assert row is not None
        return MeterReading(
            float(self._ring_t[slot]),
            {outlet: float(row[outlet])
             for outlet in range(self.num_outlets)})

    def latest(self) -> Optional[MeterReading]:
        if self._ring_len == 0:
            return None
        return self._reading_at(self._ring_len - 1)

    def history(self) -> List[MeterReading]:
        return [self._reading_at(index) for index in range(self._ring_len)]


class AutomaticTransferSwitch:
    """ATS: selects between two upstream feeds (utility / generator).

    Present for completeness of the Figure 7 topologies; in the HEB
    architecture the ATS sits upstream of the PDU and is not on the
    per-server storage path.
    """

    def __init__(self, feeds: List[str], active: Optional[str] = None) -> None:
        if not feeds:
            raise TopologyError("ATS needs at least one feed")
        self.feeds = list(feeds)
        self.active = active if active is not None else feeds[0]
        if self.active not in self.feeds:
            raise TopologyError(f"active feed {self.active!r} not in feeds")
        self.transfer_count = 0

    def transfer(self, feed: str) -> None:
        """Switch to another upstream feed."""
        if feed not in self.feeds:
            raise SwitchError(f"unknown feed: {feed!r}")
        if feed != self.active:
            self.active = feed
            self.transfer_count += 1


class PowerDistributionUnit:
    """PDU: splits one feed across branch circuits with a rating limit."""

    def __init__(self, rating_w: float, num_branches: int) -> None:
        if rating_w <= 0:
            raise TopologyError("PDU rating must be positive")
        if num_branches <= 0:
            raise TopologyError("PDU needs at least one branch")
        self.rating_w = rating_w
        self.num_branches = num_branches
        self.overload_events = 0

    def check_load(self, branch_loads_w: List[float]) -> bool:
        """True when within rating; counts overload events otherwise."""
        if len(branch_loads_w) > self.num_branches:
            raise TopologyError(
                f"{len(branch_loads_w)} branches on a "
                f"{self.num_branches}-branch PDU")
        total = sum(branch_loads_w)
        if total > self.rating_w:
            self.overload_events += 1
            return False
        return True
