"""Provisioning analysis: MPPU and capped energy (Figure 1a).

Section 2.1 defines the maximum provisioning utilization power::

    MPPU = sum(t) / sum(T)

where ``sum(t)`` is the time demand reaches the provisioned budget and
``sum(T)`` the total running time.  An aggressively under-provisioned
budget yields a high MPPU (the infrastructure is well used) at the price
of more frequent power mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..workloads.base import PowerTrace


@dataclass(frozen=True)
class ProvisioningLevel:
    """Outcome of provisioning a budget against a demand trace.

    Attributes:
        name: Display label (P1..P4 in the paper).
        budget_w: The provisioned power budget.
        budget_fraction: Budget relative to the trace's peak demand.
        mppu: Fraction of time demand reaches the budget.
        capped_energy_fraction: Share of demand energy above the budget
            (what must be shaved by buffers or lost to capping).
        mismatch_events: Number of contiguous intervals above the budget.
        capital_cost_low / capital_cost_high: Infrastructure CAP-EX range
            at the paper's $10-20 per provisioned watt.
    """

    name: str
    budget_w: float
    budget_fraction: float
    mppu: float
    capped_energy_fraction: float
    mismatch_events: int
    capital_cost_low: float
    capital_cost_high: float


def mppu(trace: PowerTrace, budget_w: float) -> float:
    """Fraction of time demand reaches or exceeds the budget."""
    if budget_w <= 0:
        raise ConfigurationError("budget must be positive")
    return float((trace.values_w >= budget_w).mean())


def capped_energy_fraction(trace: PowerTrace, budget_w: float) -> float:
    """Share of total demand energy above the budget."""
    if budget_w <= 0:
        raise ConfigurationError("budget must be positive")
    total = trace.values_w.sum()
    if total <= 0:
        return 0.0
    over = np.maximum(trace.values_w - budget_w, 0.0).sum()
    return float(over / total)


def count_mismatch_events(trace: PowerTrace, budget_w: float) -> int:
    """Number of contiguous above-budget intervals."""
    over = trace.values_w >= budget_w
    if not over.any():
        return 0
    transitions = np.diff(over.astype(int))
    rising = int((transitions == 1).sum())
    return rising + int(over[0])


def provisioning_analysis(trace: PowerTrace,
                          fractions: Sequence[float] = (1.0, 0.8, 0.6, 0.4),
                          cost_low_per_w: float = 10.0,
                          cost_high_per_w: float = 20.0,
                          ) -> list[ProvisioningLevel]:
    """Evaluate provisioning levels P1..Pn against a demand trace.

    Reproduces the Figure 1(a) analysis: P1 covers the peak (MPPU near
    zero, high cost), P4 provisions 40% (high MPPU, frequent mismatches).
    """
    if not fractions:
        raise ConfigurationError("need at least one provisioning fraction")
    peak = trace.stats().peak_w
    levels = []
    for index, fraction in enumerate(fractions, start=1):
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"provisioning fraction must lie in (0, 1]: {fraction!r}")
        budget = peak * fraction
        levels.append(ProvisioningLevel(
            name=f"P{index}",
            budget_w=budget,
            budget_fraction=fraction,
            mppu=mppu(trace, budget),
            capped_energy_fraction=capped_energy_fraction(trace, budget),
            mismatch_events=count_mismatch_events(trace, budget),
            capital_cost_low=budget * cost_low_per_w,
            capital_cost_high=budget * cost_high_per_w,
        ))
    return levels
