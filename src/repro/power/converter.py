"""Power-conversion stages and their losses.

Conversion losses are central to the paper's architecture argument
(Section 4.1): a centralized online UPS "always performs double converting
(AC-DC-AC), which leads to 4-10% power losses", while rack-level DC
delivery "can avoid the DC/AC conversion".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Converter:
    """One conversion stage with a flat efficiency.

    Attributes:
        name: Human-readable stage name.
        efficiency: Output power / input power, in (0, 1].
    """

    name: str
    efficiency: float

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError(
                f"{self.name}: efficiency must lie in (0, 1], "
                f"got {self.efficiency!r}")

    def deliver(self, power_w: float) -> float:
        """Power at the output given power at the input."""
        if power_w < 0:
            raise ConfigurationError("power cannot be negative")
        return power_w * self.efficiency

    def required_input(self, output_w: float) -> float:
        """Power that must enter the stage to deliver ``output_w``."""
        if output_w < 0:
            raise ConfigurationError("power cannot be negative")
        return output_w / self.efficiency

    def loss(self, power_w: float) -> float:
        """Power dissipated in the stage for a given input."""
        return power_w - self.deliver(power_w)

    def chain(self, other: "Converter") -> "Converter":
        """Compose two stages into one equivalent converter."""
        return Converter(name=f"{self.name}+{other.name}",
                         efficiency=self.efficiency * other.efficiency)


IDEAL_CONVERTER = Converter(name="ideal", efficiency=1.0)

# A centralized online UPS double-converts (AC-DC-AC): 4-10% loss.  We use
# the middle of the paper's range.
DOUBLE_CONVERSION_UPS = Converter(name="ups-double-conversion",
                                  efficiency=0.93)

# One DC/AC inverter stage (cluster-level HEB deployment, Figure 8b).
DC_AC_INVERTER = Converter(name="dc-ac-inverter", efficiency=0.95)

# Server PSU AC-to-DC stage (present on every AC path).
SERVER_PSU = Converter(name="server-psu", efficiency=0.94)
