"""repro — reproduction of HEB (ISCA 2015): hybrid energy buffers for
datacenter efficiency and economy.

The library simulates a datacenter cluster whose power mismatches are
buffered by a pooled supercapacitor + lead-acid-battery system under six
power-management schemes (Table 2 of the paper), and reproduces every
table and figure of the paper's evaluation.

Quick start::

    from repro import quick_run

    result = quick_run("HEB-D", "PR", hours=2.0)
    print(result.metrics.energy_efficiency)

See ``examples/`` for full scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from __future__ import annotations

from . import (
    config,
    core,
    faults,
    power,
    runner,
    server,
    sim,
    storage,
    tco,
    workloads,
)
from .config import (
    BatteryConfig,
    ClusterConfig,
    ControllerConfig,
    HybridBufferConfig,
    PATConfig,
    PredictorConfig,
    ServerConfig,
    SimulationConfig,
    SupercapConfig,
    TCOConfig,
    paper_tco,
    prototype_battery,
    prototype_buffer,
    prototype_cluster,
    prototype_controller,
    prototype_supercap,
)
from .core import make_policy, POLICY_NAMES
from .errors import ReproError
from .faults import FaultSchedule, load_schedule
from .runner import (
    ExperimentRunner,
    ExperimentSetup,
    ResultCache,
    RunRequest,
    using_runner,
)
from .sim import HybridBuffers, RunResult, Simulation, compare_schemes
from .workloads import get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "config", "core", "faults", "power", "runner", "server", "sim",
    "storage", "tco", "workloads",
    "FaultSchedule", "load_schedule",
    "ExperimentRunner", "ExperimentSetup", "ResultCache", "RunRequest",
    "using_runner",
    "BatteryConfig", "ClusterConfig", "ControllerConfig",
    "HybridBufferConfig", "PATConfig", "PredictorConfig", "ServerConfig",
    "SimulationConfig", "SupercapConfig", "TCOConfig",
    "paper_tco", "prototype_battery", "prototype_buffer",
    "prototype_cluster", "prototype_controller", "prototype_supercap",
    "make_policy", "POLICY_NAMES",
    "ReproError",
    "HybridBuffers", "RunResult", "Simulation", "compare_schemes",
    "get_workload", "workload_names",
    "quick_run",
]


def quick_run(scheme: str, workload: str, hours: float = 2.0,
              seed: int = 0, budget_w: float | None = None,
              sc_fraction: float = 0.3,
              faults: FaultSchedule | None = None) -> RunResult:
    """Run one (scheme, workload) simulation with prototype defaults.

    Args:
        scheme: One of :data:`POLICY_NAMES` ("BaOnly" ... "HEB-D").
        workload: One of the Table 1 abbreviations ("PR" ... "TS").
        hours: Simulated duration.
        seed: Workload RNG seed.
        budget_w: Utility budget override (prototype default 260 W).
        sc_fraction: SC share of the buffer capacity (paper default 0.3).
        faults: Optional :class:`repro.faults.FaultSchedule` to inject;
            None (or an empty schedule) runs fault-free.

    Returns:
        The :class:`repro.sim.RunResult` of the run.
    """
    from .runner import get_runner

    setup = ExperimentSetup(duration_h=hours, budget_w=budget_w,
                            seed=seed, sc_fraction=sc_fraction)
    return get_runner().run(RunRequest(scheme, workload, setup=setup,
                                       faults=faults))
