"""Unit helpers and conversions used throughout the library.

The library works internally in SI base units:

* power      — watts (W)
* energy     — joules (J)
* charge     — coulombs (C)
* potential  — volts (V)
* current    — amperes (A)
* time       — seconds (s)

Datasheet-style quantities (Ah, Wh, kWh) appear only at configuration
boundaries; these helpers convert them explicitly so no magic constants
leak into model code.
"""

from __future__ import annotations

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_YEAR = 365.0 * SECONDS_PER_DAY

HOURS_PER_YEAR = 8760.0


def wh_to_joules(watt_hours: float) -> float:
    """Convert watt-hours to joules."""
    return watt_hours * SECONDS_PER_HOUR


def kwh_to_joules(kilowatt_hours: float) -> float:
    """Convert kilowatt-hours to joules."""
    return kilowatt_hours * 1000.0 * SECONDS_PER_HOUR


def joules_to_wh(joules: float) -> float:
    """Convert joules to watt-hours."""
    return joules / SECONDS_PER_HOUR


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / (1000.0 * SECONDS_PER_HOUR)


def ah_to_coulombs(amp_hours: float) -> float:
    """Convert amp-hours to coulombs."""
    return amp_hours * SECONDS_PER_HOUR


def coulombs_to_ah(coulombs: float) -> float:
    """Convert coulombs to amp-hours."""
    return coulombs / SECONDS_PER_HOUR


def minutes(count: float) -> float:
    """Return ``count`` minutes expressed in seconds."""
    return count * SECONDS_PER_MINUTE


def hours(count: float) -> float:
    """Return ``count`` hours expressed in seconds."""
    return count * SECONDS_PER_HOUR


def days(count: float) -> float:
    """Return ``count`` days expressed in seconds."""
    return count * SECONDS_PER_DAY


def years(count: float) -> float:
    """Return ``count`` years expressed in seconds."""
    return count * SECONDS_PER_YEAR


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval [low, high]."""
    if low > high:
        raise ValueError(f"clamp bounds inverted: low={low!r} > high={high!r}")
    return max(low, min(high, value))
