"""Exception hierarchy for the HEB reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate on the specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or internally inconsistent."""


class StorageError(ReproError):
    """Base class for energy-storage device failures."""


class DepletedError(StorageError):
    """A discharge was requested from a device with no usable energy left.

    Callers that dispatch power across a pool normally check
    :meth:`EnergyStorageDevice.usable_energy` first; this exception guards
    against logic errors rather than expected run-time conditions.
    """


class OverchargeError(StorageError):
    """A charge was requested that would exceed the device's capacity."""


class CurrentLimitError(StorageError):
    """A requested current exceeds the device's safe operating limit."""


class TopologyError(ReproError):
    """A power-delivery topology was wired inconsistently."""


class SwitchError(TopologyError):
    """A power switch was actuated into an invalid state."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class BatchCompatibilityError(SimulationError):
    """A scenario set cannot share one batched tick loop.

    Raised by :class:`~repro.sim.batch.BatchSimulation` when scenarios
    disagree on the tick grid, slot grid, or cluster shape, or use
    features (fault injection, profiling, device banks) the batched
    path does not carry.  The runner catches this and falls back to
    per-scenario scalar runs.
    """


class TraceError(ReproError):
    """A power trace is malformed (wrong length, negative power, ...)."""


class PredictionError(ReproError):
    """The predictor was asked for a forecast before seeing enough data."""


class TCOError(ReproError):
    """An economics computation received inconsistent inputs."""


class FaultSpecError(ReproError):
    """A fault-injection schedule or event specification is invalid.

    Raised for out-of-range event parameters, unknown fault kinds, and
    malformed schedule documents — always before a simulation starts,
    never while one is running.
    """


class AnalysisError(ReproError):
    """The static-analysis tooling was invoked incorrectly.

    Raised for unknown rule ids, missing lint paths, and unreadable
    source files — usage errors, never findings (those are data, not
    exceptions).
    """


class ServiceError(ReproError):
    """Base class for scenario-service failures (``python -m repro serve``).

    Every subclass maps onto one structured HTTP error: the response body
    carries ``{"error": {"code": <class name>, "message": ...}}`` so
    clients can dispatch on the code without parsing prose.
    """


class ProtocolError(ServiceError):
    """An HTTP exchange violated the service's wire contract.

    Raised for malformed request lines, oversized headers/bodies, and
    unroutable method/path pairs — transport-level problems, as opposed
    to :class:`SpecError` which covers a well-transported but invalid
    run spec.
    """


class SpecError(ServiceError):
    """A submitted run spec is malformed (not a valid ``RunRequest``).

    Raised for non-JSON bodies, unknown fields, wrong field types, and
    unknown scheme/workload names — always before anything is enqueued,
    and always surfaced as a structured HTTP 400.
    """


class QueueFullError(ServiceError):
    """The service's bounded work queue rejected a new submission.

    Carries ``retry_after_s`` — the server's estimate of when capacity
    frees up — which the HTTP layer surfaces as a 429 ``Retry-After``
    header.  An accepted request is never dropped; rejection happens
    only at submission time.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class UnknownRunError(ServiceError):
    """A poll/stream referenced a run key this service has never seen."""


class RunExecutionError(ServiceError):
    """An accepted run's execution crashed outside the ReproError contract.

    Wraps pool/pickle/engine failures so the run still reaches a
    terminal ``failed`` state with a structured code instead of hanging
    its submitters; the original failure is preserved in the message.
    """


class ServiceShutdownError(ServiceError):
    """The service is shutting down and no longer accepts submissions.

    Also the terminal error recorded on queued runs aborted by a
    non-draining shutdown: every accepted run either completes or
    faults with this code — none silently disappear.
    """
