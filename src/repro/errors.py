"""Exception hierarchy for the HEB reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate on the specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or internally inconsistent."""


class StorageError(ReproError):
    """Base class for energy-storage device failures."""


class DepletedError(StorageError):
    """A discharge was requested from a device with no usable energy left.

    Callers that dispatch power across a pool normally check
    :meth:`EnergyStorageDevice.usable_energy` first; this exception guards
    against logic errors rather than expected run-time conditions.
    """


class OverchargeError(StorageError):
    """A charge was requested that would exceed the device's capacity."""


class CurrentLimitError(StorageError):
    """A requested current exceeds the device's safe operating limit."""


class TopologyError(ReproError):
    """A power-delivery topology was wired inconsistently."""


class SwitchError(TopologyError):
    """A power switch was actuated into an invalid state."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class BatchCompatibilityError(SimulationError):
    """A scenario set cannot share one batched tick loop.

    Raised by :class:`~repro.sim.batch.BatchSimulation` when scenarios
    disagree on the tick grid, slot grid, or cluster shape, or use
    features (fault injection, profiling, device banks) the batched
    path does not carry.  The runner catches this and falls back to
    per-scenario scalar runs.
    """


class TraceError(ReproError):
    """A power trace is malformed (wrong length, negative power, ...)."""


class PredictionError(ReproError):
    """The predictor was asked for a forecast before seeing enough data."""


class TCOError(ReproError):
    """An economics computation received inconsistent inputs."""


class FaultSpecError(ReproError):
    """A fault-injection schedule or event specification is invalid.

    Raised for out-of-range event parameters, unknown fault kinds, and
    malformed schedule documents — always before a simulation starts,
    never while one is running.
    """


class AnalysisError(ReproError):
    """The static-analysis tooling was invoked incorrectly.

    Raised for unknown rule ids, missing lint paths, and unreadable
    source files — usage errors, never findings (those are data, not
    exceptions).
    """
