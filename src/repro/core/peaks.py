"""Peak detection and the small/large classification (Section 5.2).

The HEB controller branches on "the average height of predicted power
mismatching" and its duration: mild-and-short peaks take the two-tier
SC-first path; significant-and-long peaks take the joint PAT-driven path.
This module provides both the classifier used at planning time (from a
prediction) and the slot analyzer used at observation time (from realized
samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..config import ControllerConfig
from ..workloads.base import PowerTrace
from ..workloads.synthetic import PeakClass


@dataclass(frozen=True)
class PeakEvent:
    """One contiguous above-budget interval within a slot."""

    start_s: float
    duration_s: float
    mean_excess_w: float
    max_excess_w: float


@dataclass(frozen=True)
class PeakAnalysis:
    """Realized peak/valley structure of one control slot.

    Attributes:
        peak_w: Maximum aggregate demand in the slot.
        valley_w: Minimum aggregate demand in the slot.
        mismatch_w: peak - valley (the realized ΔPM).
        time_over_budget_s: Total time demand exceeded the budget.
        excess_energy_j: Energy above the budget (what buffers must supply).
        surplus_energy_j: Energy headroom below the budget (charging
            opportunity).
        events: The individual above-budget intervals.
    """

    peak_w: float
    valley_w: float
    mismatch_w: float
    time_over_budget_s: float
    excess_energy_j: float
    surplus_energy_j: float
    events: Tuple[PeakEvent, ...]


def classify_peak(mismatch_w: float, duration_s: float,
                  config: ControllerConfig) -> PeakClass:
    """Small/large classification used by the HEB planner.

    A peak is *small* only when both the predicted height and the expected
    duration are below their thresholds; anything tall **or** long is
    treated as large (the conservative direction — misclassifying a large
    peak as small risks stranding the load on a depleted SC pool).
    """
    if (mismatch_w <= config.small_peak_power_w
            and duration_s <= config.small_peak_duration_s):
        return PeakClass.SMALL
    return PeakClass.LARGE


def analyze_slot(slot: PowerTrace, budget_w: float) -> PeakAnalysis:
    """Measure the realized peak structure of one slot against a budget."""
    values = slot.values_w
    dt = slot.dt_s
    over = values > budget_w
    excess = np.maximum(values - budget_w, 0.0)
    surplus = np.maximum(budget_w - values, 0.0)

    # Run detection on the over mask: an event starts where the mask
    # flips False -> True and stops where it flips back (or at the slot
    # edges).  Identical (start, stop) windows to a linear scan.
    events: List[PeakEvent] = []
    if over.any():
        edges = np.diff(over.view(np.int8))
        starts = np.flatnonzero(edges == 1) + 1
        stops = np.flatnonzero(edges == -1) + 1
        if over[0]:
            starts = np.concatenate(([0], starts))
        if over[-1]:
            stops = np.concatenate((stops, [len(values)]))
        for start, stop in zip(starts.tolist(), stops.tolist()):
            events.append(_make_event(excess, start, stop, dt))

    return PeakAnalysis(
        peak_w=float(values.max()),
        valley_w=float(values.min()),
        mismatch_w=float(values.max() - values.min()),
        time_over_budget_s=float(over.sum()) * dt,
        excess_energy_j=float(excess.sum()) * dt,
        surplus_energy_j=float(surplus.sum()) * dt,
        events=tuple(events),
    )


def analyze_slots(blocks: np.ndarray, budgets: np.ndarray,
                  dt: float) -> List[PeakAnalysis]:
    """Row-parallel :func:`analyze_slot` over a (lanes, ticks) block.

    Row ``i``'s result is exactly
    ``analyze_slot(PowerTrace(blocks[i], dt), float(budgets[i]))``: the
    row-wise reductions of a C-ordered block use the same (pairwise)
    reduction an equivalent 1-D call would, elementwise arithmetic is
    identical by construction, and the event windows come from the same
    edge detection applied per row.  ``blocks`` must be C-contiguous.
    """
    lanes, num = blocks.shape
    col_budgets = budgets[:, None]
    over = blocks > col_budgets
    excess = np.maximum(blocks - col_budgets, 0.0)
    surplus = np.maximum(col_budgets - blocks, 0.0)
    peaks = blocks.max(axis=1)
    valleys = blocks.min(axis=1)
    over_counts = over.sum(axis=1)
    excess_sums = excess.sum(axis=1)
    surplus_sums = surplus.sum(axis=1)

    results: List[PeakAnalysis] = []
    for lane in range(lanes):
        events: List[PeakEvent] = []
        if over_counts[lane]:
            row = over[lane]
            edges = np.diff(row.view(np.int8))
            starts = np.flatnonzero(edges == 1) + 1
            stops = np.flatnonzero(edges == -1) + 1
            if row[0]:
                starts = np.concatenate(([0], starts))
            if row[-1]:
                stops = np.concatenate((stops, [num]))
            excess_row = excess[lane]
            for start, stop in zip(starts.tolist(), stops.tolist()):
                events.append(_make_event(excess_row, start, stop, dt))
        results.append(PeakAnalysis(
            peak_w=float(peaks[lane]),
            valley_w=float(valleys[lane]),
            mismatch_w=float(peaks[lane] - valleys[lane]),
            time_over_budget_s=float(over_counts[lane]) * dt,
            excess_energy_j=float(excess_sums[lane]) * dt,
            surplus_energy_j=float(surplus_sums[lane]) * dt,
            events=tuple(events),
        ))
    return results


def _make_event(excess: np.ndarray, start: int, stop: int,
                dt: float) -> PeakEvent:
    window = excess[start:stop]
    return PeakEvent(
        start_s=start * dt,
        duration_s=(stop - start) * dt,
        mean_excess_w=float(window.mean()),
        max_excess_w=float(window.max()),
    )


def expected_peak_duration_s(analysis: PeakAnalysis) -> float:
    """Mean above-budget event duration of a slot (0 when no events)."""
    if not analysis.events:
        return 0.0
    return sum(e.duration_s for e in analysis.events) / len(analysis.events)
