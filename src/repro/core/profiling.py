"""Pilot-run profiling: the Figure 6 experiment and PAT seeding.

The paper obtains initial PAT values "via profiling in a pilot scheme like
Figure 6": hold the power mismatch constant, sweep the server split
between SCs and batteries, and record how long the cluster stays up.  The
optimum exists because leaning too hard on either device wastes the other
— SCs deplete quickly, batteries collapse under high current.

These routines run the same experiment against the device models, both to
regenerate Figure 6 and to seed :class:`PowerAllocationTable` instances.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence, Tuple

from ..errors import ConfigurationError
from ..storage.device import EnergyStorageDevice
from ..units import hours
from .pat import PowerAllocationTable

DeviceFactory = Callable[[], EnergyStorageDevice]

_EPSILON = 1e-9


def runtime_for_ratio(sc_factory: DeviceFactory,
                      battery_factory: DeviceFactory,
                      deficit_w: float,
                      r_lambda: float,
                      sc_soc: float = 1.0,
                      battery_soc: float = 1.0,
                      dt: float = 5.0,
                      max_time_s: float = hours(4.0)) -> float:
    """Sustained runtime for one (state, mismatch, ratio) combination.

    The SC pool serves ``r_lambda * deficit_w`` and the battery pool the
    rest; when either pool cannot meet its share, the other immediately
    takes over the shortfall ("whenever one energy storage device is
    depleted, the other will take over the entire load immediately via
    power switches", Section 3.2).  Runtime ends when the combined pools
    first fail to cover the deficit.
    """
    if deficit_w <= 0:
        raise ConfigurationError("deficit must be positive")
    if not 0.0 <= r_lambda <= 1.0:
        raise ConfigurationError("r_lambda must lie in [0, 1]")
    supercap = sc_factory()
    battery = battery_factory()
    supercap.reset(sc_soc)
    battery.reset(battery_soc)

    elapsed = 0.0
    while elapsed < max_time_s:
        sc_share = r_lambda * deficit_w
        ba_share = deficit_w - sc_share

        delivered = 0.0
        sc_result = ba_result = None
        if sc_share > _EPSILON:
            sc_result = supercap.discharge(sc_share, dt)
            delivered += sc_result.achieved_w
        if ba_share > _EPSILON:
            ba_result = battery.discharge(ba_share, dt)
            delivered += ba_result.achieved_w

        shortfall = deficit_w - delivered
        if shortfall > 1e-6:
            # Fail-over: the other pool takes the remainder.
            if sc_result is not None and sc_result.limited:
                takeover = battery.discharge(shortfall, dt)
                delivered += takeover.achieved_w
            elif ba_result is not None and ba_result.limited:
                takeover = supercap.discharge(shortfall, dt)
                delivered += takeover.achieved_w
            elif sc_share <= _EPSILON:
                takeover = supercap.discharge(shortfall, dt)
                delivered += takeover.achieved_w
            elif ba_share <= _EPSILON:
                takeover = battery.discharge(shortfall, dt)
                delivered += takeover.achieved_w

        if deficit_w - delivered > 1e-6:
            break
        elapsed += dt
    return elapsed


def profile_optimal_ratio(sc_factory: DeviceFactory,
                          battery_factory: DeviceFactory,
                          deficit_w: float,
                          ratios: Sequence[float] = tuple(
                              i / 10.0 for i in range(11)),
                          sc_soc: float = 1.0,
                          battery_soc: float = 1.0,
                          dt: float = 5.0,
                          ) -> Tuple[float, Dict[float, float]]:
    """Sweep R_lambda and return (best ratio, runtime per ratio).

    This is the Figure 6 experiment: "there is an optimal load assignment
    that can provide the longest discharging time."
    """
    if not ratios:
        raise ConfigurationError("need at least one ratio to profile")
    runtimes: Dict[float, float] = {}
    for ratio in ratios:
        runtimes[ratio] = runtime_for_ratio(
            sc_factory, battery_factory, deficit_w, ratio,
            sc_soc=sc_soc, battery_soc=battery_soc, dt=dt)
    best = max(runtimes, key=lambda r: (runtimes[r], -abs(r - 0.5)))
    return best, runtimes


def seed_pat(pat: PowerAllocationTable,
             sc_factory: DeviceFactory,
             battery_factory: DeviceFactory,
             sc_nominal_j: float,
             battery_nominal_j: float,
             soc_levels: Iterable[float] = (0.34, 0.67, 1.0),
             power_levels_w: Iterable[float] = (40.0, 80.0, 120.0, 160.0),
             ratios: Sequence[float] = tuple(i / 10.0 for i in range(11)),
             dt: float = 5.0) -> int:
    """Fill a PAT with profiled optima over a (state x mismatch) grid.

    Returns the number of entries written.  A denser grid gives HEB-D its
    head start; HEB-S deliberately uses a much coarser grid ("a static
    profiling table that has limited entries").
    """
    count = 0
    for sc_soc in soc_levels:
        for battery_soc in soc_levels:
            for power_w in power_levels_w:
                best, __ = profile_optimal_ratio(
                    sc_factory, battery_factory, power_w, ratios=ratios,
                    sc_soc=sc_soc, battery_soc=battery_soc, dt=dt)
                pat.add(sc_soc * sc_nominal_j,
                        battery_soc * battery_nominal_j,
                        power_w, best, source="profile")
                count += 1
    return count
