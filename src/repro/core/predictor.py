"""Holt-Winters triple-exponential-smoothing predictor (Section 5.2).

The hControl "maintains two groups of series data: the peak power and
valley power.  It predicts the peak power demands (P_peak) and valley
power (P_valley) of next time-slot."  We implement the classical additive
Holt-Winters recurrences (level + trend + seasonal), one instance per
series, wrapped in a single :class:`HoltWintersPredictor` that consumes
per-slot observations and emits :class:`SlotPrediction` objects.

Before a full season of history exists the predictor falls back to
last-value prediction — matching how a freshly deployed controller must
behave before it has seen a full cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import PredictorConfig
from ..errors import PredictionError


@dataclass(frozen=True)
class SlotPrediction:
    """Next-slot forecast.

    Attributes:
        peak_w: Predicted peak power demand.
        valley_w: Predicted valley power demand.
        mismatch_w: Predicted net buffer demand, ΔPM = P_peak - P_valley
            (floored at zero).
        warmed_up: False while the forecast is a last-value fallback.
    """

    peak_w: float
    valley_w: float
    warmed_up: bool

    @property
    def mismatch_w(self) -> float:
        return max(0.0, self.peak_w - self.valley_w)


class _HoltWintersSeries:
    """Additive Holt-Winters state for one scalar series."""

    def __init__(self, config: PredictorConfig) -> None:
        self.config = config
        self.history: List[float] = []
        self.level: Optional[float] = None
        self.trend: float = 0.0
        self.seasonal: List[float] = []

    @property
    def warmed_up(self) -> bool:
        return self.level is not None

    def _initialize(self) -> None:
        """Bootstrap level/trend/seasonals from the first full season."""
        season = self.config.season_length
        window = self.history[:season]
        mean = sum(window) / season
        self.level = mean
        self.trend = (window[-1] - window[0]) / max(1, season - 1)
        self.seasonal = [value - mean for value in window]

    def observe(self, value: float) -> None:
        """Fold one observation into the smoothing state."""
        self.history.append(value)
        season = self.config.season_length
        if self.level is None:
            if len(self.history) >= season:
                self._initialize()
            return
        alpha = self.config.alpha
        beta = self.config.beta
        gamma = self.config.gamma
        index = (len(self.history) - 1) % season
        seasonal = self.seasonal[index]
        previous_level = self.level
        self.level = (alpha * (value - seasonal)
                      + (1.0 - alpha) * (self.level + self.trend))
        self.trend = (beta * (self.level - previous_level)
                      + (1.0 - beta) * self.trend)
        self.seasonal[index] = (gamma * (value - self.level)
                                + (1.0 - gamma) * seasonal)

    def forecast(self) -> float:
        """One-step-ahead forecast (last value before warm-up)."""
        if not self.history:
            raise PredictionError("forecast requested before any observation")
        if self.level is None:
            return self.history[-1]
        season = self.config.season_length
        index = len(self.history) % season
        return self.level + self.trend + self.seasonal[index]


class HoltWintersPredictor:
    """Per-slot peak and valley power predictor for the hControl."""

    def __init__(self, config: PredictorConfig | None = None) -> None:
        self.config = config or PredictorConfig()
        self._peak = _HoltWintersSeries(self.config)
        self._valley = _HoltWintersSeries(self.config)
        self.observations = 0

    def observe_slot(self, peak_w: float, valley_w: float) -> None:
        """Record the realized peak/valley of a finished control slot."""
        if peak_w < 0 or valley_w < 0:
            raise PredictionError("power observations cannot be negative")
        if valley_w > peak_w:
            peak_w, valley_w = valley_w, peak_w
        self._peak.observe(peak_w)
        self._valley.observe(valley_w)
        self.observations += 1

    def predict(self) -> SlotPrediction:
        """Forecast the next slot's peak and valley.

        Raises:
            PredictionError: Before the first observation.
        """
        peak = max(0.0, self._peak.forecast())
        valley = max(0.0, self._valley.forecast())
        if valley > peak:
            valley = peak
        return SlotPrediction(
            peak_w=peak,
            valley_w=valley,
            warmed_up=self._peak.warmed_up and self._valley.warmed_up,
        )

    def mean_absolute_error(self) -> float:
        """In-sample one-step MAE of the peak series (diagnostics).

        Replays the history through a fresh smoother, comparing each
        one-step forecast against the realized value.
        """
        series = _HoltWintersSeries(self.config)
        errors = []
        for value in self._peak.history:
            if series.history:
                errors.append(abs(series.forecast() - value))
            series.observe(value)
        if not errors:
            return 0.0
        return sum(errors) / len(errors)
