"""Capacity right-sizing advisor.

Section 7.5 closes with: "The results contribute to the right-sizing of
the heterogeneous energy buffers for the real systems as the cost of
provisioning energy buffers grows with the increased capacity."  This
module turns that observation into a tool: given a workload and a
downtime budget, find the smallest hybrid buffer (by bisection over total
capacity) that meets it, and price the result.

This is an extension beyond the paper's evaluation, built from the same
primitives.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..config import ClusterConfig, HybridBufferConfig, prototype_buffer
from ..errors import ConfigurationError
from ..sim import HybridBuffers, Simulation
from ..units import joules_to_kwh, wh_to_joules
from ..workloads.base import ClusterTrace


@dataclass(frozen=True)
class SizingResult:
    """Outcome of a right-sizing search.

    Attributes:
        total_energy_wh: Smallest capacity meeting the target (None when
            even the upper bound fails).
        sc_fraction: SC share used throughout the search.
        downtime_s: Downtime measured at the recommended capacity.
        downtime_target_s: The requirement.
        capex_dollars: Purchase cost at the given $/kWh prices.
        evaluations: How many simulations the bisection spent.
    """

    total_energy_wh: Optional[float]
    sc_fraction: float
    downtime_s: float
    downtime_target_s: float
    capex_dollars: Optional[float]
    evaluations: int

    @property
    def feasible(self) -> bool:
        return self.total_energy_wh is not None


def _downtime_at(trace: ClusterTrace, cluster: ClusterConfig,
                 hybrid: HybridBufferConfig, scheme: str) -> float:
    from . import make_policy  # local import to avoid a cycle

    policy = make_policy(scheme, hybrid=hybrid)
    buffers = HybridBuffers(hybrid, include_sc=scheme.lower() != "baonly")
    result = Simulation(trace, policy, buffers,
                        cluster_config=cluster).run()
    return result.metrics.server_downtime_s


def right_size_buffer(trace: ClusterTrace,
                      cluster: ClusterConfig,
                      downtime_target_s: float = 0.0,
                      sc_fraction: float = 0.3,
                      scheme: str = "HEB-D",
                      min_wh: float = 20.0,
                      max_wh: float = 600.0,
                      tolerance_wh: float = 10.0,
                      battery_cost_per_kwh: float = 300.0,
                      supercap_cost_per_kwh: float = 10_000.0,
                      ) -> SizingResult:
    """Find the smallest buffer meeting a downtime budget by bisection.

    Downtime is monotone non-increasing in capacity for a fixed policy
    and trace (more stored energy never forces extra shedding), which
    makes bisection sound.

    Args:
        trace: The demand to survive.
        cluster: Cluster and utility budget.
        downtime_target_s: Maximum acceptable aggregate downtime.
        sc_fraction: SC share of the buffer (paper default 0.3).
        scheme: Power-management scheme to size for.
        min_wh / max_wh: Search bracket (total capacity).
        tolerance_wh: Bracket width at which the search stops.
        battery_cost_per_kwh / supercap_cost_per_kwh: Pricing for the
            CAP-EX figure.

    Returns:
        A :class:`SizingResult`; infeasible when even ``max_wh`` misses
        the target.
    """
    if downtime_target_s < 0:
        raise ConfigurationError("downtime target cannot be negative")
    if not 0 < min_wh < max_wh:
        raise ConfigurationError("need 0 < min_wh < max_wh")
    if tolerance_wh <= 0:
        raise ConfigurationError("tolerance must be positive")

    def hybrid_at(total_wh: float) -> HybridBufferConfig:
        return prototype_buffer(sc_fraction=sc_fraction,
                                total_energy_wh=total_wh)

    evaluations = 0

    def downtime(total_wh: float) -> float:
        nonlocal evaluations
        evaluations += 1
        return _downtime_at(trace, cluster, hybrid_at(total_wh), scheme)

    upper_downtime = downtime(max_wh)
    if upper_downtime > downtime_target_s:
        return SizingResult(
            total_energy_wh=None, sc_fraction=sc_fraction,
            downtime_s=upper_downtime,
            downtime_target_s=downtime_target_s, capex_dollars=None,
            evaluations=evaluations)

    lower_downtime = downtime(min_wh)
    if lower_downtime <= downtime_target_s:
        best_wh, best_downtime = min_wh, lower_downtime
    else:
        low, high = min_wh, max_wh
        best_wh, best_downtime = max_wh, upper_downtime
        while high - low > tolerance_wh:
            mid = 0.5 * (low + high)
            mid_downtime = downtime(mid)
            if mid_downtime <= downtime_target_s:
                high, best_wh, best_downtime = mid, mid, mid_downtime
            else:
                low = mid
    capex = _capex(hybrid_at(best_wh), battery_cost_per_kwh,
                   supercap_cost_per_kwh)
    return SizingResult(
        total_energy_wh=best_wh, sc_fraction=sc_fraction,
        downtime_s=best_downtime, downtime_target_s=downtime_target_s,
        capex_dollars=capex, evaluations=evaluations)


def _capex(hybrid: HybridBufferConfig, battery_cost_per_kwh: float,
           supercap_cost_per_kwh: float) -> float:
    battery_kwh = joules_to_kwh(hybrid.battery_energy_j)
    sc_kwh = joules_to_kwh(hybrid.sc_energy_j)
    return (battery_kwh * battery_cost_per_kwh
            + sc_kwh * supercap_cost_per_kwh)
