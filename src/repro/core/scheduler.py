"""Turning an R_lambda ratio into per-server relay assignments.

The hControl "dynamically control[s] the on/off power switches to assign
different ratio servers powered by SCs or batteries" (Section 5.2).  The
scheduler decides, each tick:

1. *who leaves utility* — the smallest set of servers whose removal brings
   the remaining utility draw within budget (moving the hungriest servers
   first frees the most budget per switch);
2. *how the buffered set splits* — ``round(R_lambda * n_buffered)``
   servers to the SC pool (highest-demand first, because SCs tolerate
   high current), the rest to the battery pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import SimulationError
from ..server.server import PowerSource
from ..units import clamp


@dataclass(frozen=True)
class Assignment:
    """One tick's relay plan.

    Attributes:
        sources: Per-server feed selection (index-aligned with servers).
        utility_draw_w: Total demand left on the utility feed.
        sc_draw_w: Total demand assigned to the SC pool.
        battery_draw_w: Total demand assigned to the battery pool.
        n_buffered: How many servers were moved off utility.
    """

    sources: tuple
    utility_draw_w: float
    sc_draw_w: float
    battery_draw_w: float
    n_buffered: int

    @property
    def buffered_draw_w(self) -> float:
        return self.sc_draw_w + self.battery_draw_w


class LoadScheduler:
    """Stateless assignment logic shared by all policies."""

    def assign(self,
               demands_w: Sequence[float],
               available: Sequence[bool],
               budget_w: float,
               r_lambda: float,
               use_sc: bool = True,
               use_battery: bool = True) -> Assignment:
        """Compute relay positions for one tick.

        Args:
            demands_w: Per-server demand (including restart power).
            available: Per-server availability flags; unavailable servers
                are never assigned a feed.
            budget_w: Utility power budget for this tick.
            r_lambda: Fraction of buffered servers on the SC pool.
            use_sc / use_battery: Which pools the scheme may touch (BaOnly
                systems have no SC pool).

        Returns:
            An :class:`Assignment`; if neither pool is usable all servers
            stay on utility (over-budget draw is the engine's problem to
            resolve by shedding).
        """
        if budget_w < 0:
            raise SimulationError("budget cannot be negative")
        if len(demands_w) != len(available):
            raise SimulationError("demands and availability length mismatch")
        r_lambda = clamp(r_lambda, 0.0, 1.0)
        n = len(demands_w)
        sources: List[PowerSource] = [PowerSource.NONE] * n

        active = [i for i in range(n) if available[i]]
        for i in active:
            sources[i] = PowerSource.UTILITY
        total = sum(float(demands_w[i]) for i in active)

        if total <= budget_w or not (use_sc or use_battery):
            return Assignment(tuple(sources), total, 0.0, 0.0, 0)

        # Move the hungriest servers off utility until within budget.
        order = sorted(active, key=lambda i: (-float(demands_w[i]), i))
        buffered: List[int] = []
        utility_draw = total
        for i in order:
            if utility_draw <= budget_w:
                break
            buffered.append(i)
            utility_draw -= float(demands_w[i])

        if not use_sc:
            n_sc = 0
        elif not use_battery:
            n_sc = len(buffered)
        else:
            n_sc = int(round(r_lambda * len(buffered)))
        # Highest-demand buffered servers go to SCs (they tolerate the
        # current); `buffered` is already in descending-demand order.
        sc_set = set(buffered[:n_sc])
        sc_draw = battery_draw = 0.0
        for i in buffered:
            if i in sc_set:
                sources[i] = PowerSource.SUPERCAP
                sc_draw += float(demands_w[i])
            else:
                sources[i] = PowerSource.BATTERY
                battery_draw += float(demands_w[i])

        return Assignment(tuple(sources), utility_draw, sc_draw,
                          battery_draw, len(buffered))
