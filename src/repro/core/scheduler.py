"""Turning an R_lambda ratio into per-server relay assignments.

The hControl "dynamically control[s] the on/off power switches to assign
different ratio servers powered by SCs or batteries" (Section 5.2).  The
scheduler decides, each tick:

1. *who leaves utility* — the smallest set of servers whose removal brings
   the remaining utility draw within budget (moving the hungriest servers
   first frees the most budget per switch);
2. *how the buffered set splits* — ``round(R_lambda * n_buffered)``
   servers to the SC pool (highest-demand first, because SCs tolerate
   high current), the rest to the battery pool.

The scheduler is called once per simulated tick, so the common cases are
memoized: the all-on-utility relay plan is cached per cluster size, and
the descending-demand sort order is reused across consecutive ticks with
identical demands (traces are piecewise-constant at sub-sample scale).
Every fast path is arithmetic-identical to the naive implementation —
totals are accumulated element-by-element in index order, never via
pairwise NumPy reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..server.server import PowerSource
from ..units import clamp


@dataclass(frozen=True)
class Assignment:
    """One tick's relay plan.

    Attributes:
        sources: Per-server feed selection (index-aligned with servers).
        utility_draw_w: Total demand left on the utility feed.
        sc_draw_w: Total demand assigned to the SC pool.
        battery_draw_w: Total demand assigned to the battery pool.
        n_buffered: How many servers were moved off utility.
    """

    sources: tuple
    utility_draw_w: float
    sc_draw_w: float
    battery_draw_w: float
    n_buffered: int

    @property
    def buffered_draw_w(self) -> float:
        return self.sc_draw_w + self.battery_draw_w


class LoadScheduler:
    """Assignment logic shared by all policies.

    Semantically stateless — the only instance state is memoization of
    pure functions of the inputs, plus counters the profiler reports.
    """

    def __init__(self) -> None:
        self._all_utility_sources: Dict[int, tuple] = {}
        self._order_demands: Optional[List[float]] = None
        self._order: Optional[np.ndarray] = None
        self._last_mask: Optional[np.ndarray] = None
        self._last_mask_all = False
        self._cached_within_budget: Optional[Assignment] = None
        self._over_budget_key: Optional[tuple] = None
        self._over_budget_result: Optional[Assignment] = None
        #: Deterministic instrumentation, surfaced by ``--profile``.
        self.calls = 0
        self.within_budget_hits = 0
        self.order_reuses = 0

    def _everyone_available(self, available) -> bool:
        """``all(available)``, memoized by identity for immutable masks.

        The cluster hands the engine the *same* read-only ndarray until a
        server changes state, so one pointer comparison replaces a numpy
        reduction on the steady-state path.  Only non-writeable arrays
        are cached — a mutable sequence could change under the same id.
        """
        if isinstance(available, np.ndarray):
            if available is self._last_mask:
                return self._last_mask_all
            result = bool(available.all())
            if not available.flags.writeable:
                self._last_mask = available
                self._last_mask_all = result
            return result
        return all(available)

    def _all_utility(self, n: int) -> tuple:
        cached = self._all_utility_sources.get(n)
        if cached is None:
            cached = (PowerSource.UTILITY,) * n
            self._all_utility_sources[n] = cached
        return cached

    def _descending_order(self, demands: np.ndarray,
                          demands_list: List[float]) -> np.ndarray:
        """Indices in (-demand, index) order, reused while demands repeat.

        ``demands_list`` is the caller's fresh ``demands.tolist()`` (never
        mutated afterwards), so a plain list comparison detects repeats.
        """
        if self._order_demands == demands_list:
            self.order_reuses += 1
            assert self._order is not None
            return self._order
        # Stable argsort on the negated demands ties equal demands by
        # index — exactly sorted(key=lambda i: (-demands[i], i)).
        order = np.argsort(-demands, kind="stable")
        self._order_demands = demands_list
        self._order = order
        return order

    def assign(self,
               demands_w: Sequence[float],
               available: Sequence[bool],
               budget_w: float,
               r_lambda: float,
               use_sc: bool = True,
               use_battery: bool = True) -> Assignment:
        """Compute relay positions for one tick.

        Args:
            demands_w: Per-server demand (including restart power).
            available: Per-server availability flags; unavailable servers
                are never assigned a feed.
            budget_w: Utility power budget for this tick.
            r_lambda: Fraction of buffered servers on the SC pool.
            use_sc / use_battery: Which pools the scheme may touch (BaOnly
                systems have no SC pool).

        Returns:
            An :class:`Assignment`; if neither pool is usable all servers
            stay on utility (over-budget draw is the engine's problem to
            resolve by shedding).
        """
        if budget_w < 0:
            raise SimulationError("budget cannot be negative")
        if len(demands_w) != len(available):
            raise SimulationError("demands and availability length mismatch")
        self.calls += 1
        # Inlined clamp(r_lambda, 0.0, 1.0), including its NaN -> 1.0
        # quirk (min(1.0, nan) keeps 1.0), so the fast path stays
        # bit-identical to the reference implementation.
        if not (r_lambda < 1.0):
            r_lambda = 1.0
        elif r_lambda < 0.0:
            r_lambda = 0.0
        n = len(demands_w)

        if self._everyone_available(available):
            if isinstance(demands_w, np.ndarray):
                demands = demands_w
            else:
                demands = np.array(demands_w, dtype=float)
            demands_list = demands.tolist()
            # Element-by-element sum in index order: bit-identical to the
            # reference accumulation for any n (np.sum pairs terms).
            total = sum(demands_list)  # repro: noqa[RPR502] bit-exact element-order accumulation; np.sum pairwise-reorders beyond 8 terms
            if total <= budget_w or not (use_sc or use_battery):
                self.within_budget_hits += 1
                cached = self._cached_within_budget
                # Bit-exact on purpose: the memo must only hit when the
                # input is literally identical.
                if (cached is not None
                        and cached.utility_draw_w == total  # repro: noqa[RPR104]
                        and len(cached.sources) == n):
                    return cached
                assignment = Assignment(
                    self._all_utility(n), total, 0.0, 0.0, 0)
                self._cached_within_budget = assignment
                return assignment
            # Full-result memo: with everyone available the assignment is
            # a pure function of these inputs, and piecewise-constant
            # traces repeat them across consecutive ticks.
            memo_key = (budget_w, r_lambda, use_sc, use_battery)
            if (self._over_budget_key is not None
                    and self._over_budget_key[0] == memo_key
                    and self._over_budget_key[1] == demands_list):
                assert self._over_budget_result is not None
                return self._over_budget_result
            order: Sequence[int] = self._descending_order(
                demands, demands_list)
            sources: List[PowerSource] = list(self._all_utility(n))
        else:
            memo_key = None
            active = [i for i in range(n) if available[i]]
            sources = [PowerSource.NONE] * n
            for i in active:
                sources[i] = PowerSource.UTILITY
            total = sum(float(demands_w[i]) for i in active)
            if total <= budget_w or not (use_sc or use_battery):
                self.within_budget_hits += 1
                return Assignment(tuple(sources), total, 0.0, 0.0, 0)
            order = sorted(active, key=lambda i: (-float(demands_w[i]), i))

        # Move the hungriest servers off utility until within budget.
        buffered: List[int] = []
        utility_draw = total
        for i in order:  # repro: noqa[RPR502] sequential greedy cutoff is the scalar oracle the batched engine will verify against
            if utility_draw <= budget_w:
                break
            buffered.append(i)
            utility_draw -= float(demands_w[i])

        if not use_sc:
            n_sc = 0
        elif not use_battery:
            n_sc = len(buffered)
        else:
            n_sc = int(round(r_lambda * len(buffered)))
        # Highest-demand buffered servers go to SCs (they tolerate the
        # current); `buffered` is already in descending-demand order.
        sc_draw = battery_draw = 0.0
        for rank, i in enumerate(buffered):
            if rank < n_sc:
                sources[i] = PowerSource.SUPERCAP
                sc_draw += float(demands_w[i])
            else:
                sources[i] = PowerSource.BATTERY
                battery_draw += float(demands_w[i])

        assignment = Assignment(tuple(sources), utility_draw, sc_draw,
                                battery_draw, len(buffered))
        if memo_key is not None:
            self._over_budget_key = (memo_key, demands_list)
            self._over_budget_result = assignment
        return assignment


def reference_assign(demands_w: Sequence[float],
                     available: Sequence[bool],
                     budget_w: float,
                     r_lambda: float,
                     use_sc: bool = True,
                     use_battery: bool = True) -> Assignment:
    """The pre-optimization scheduler, kept verbatim as a test oracle.

    The property suite asserts :meth:`LoadScheduler.assign` returns
    bit-identical :class:`Assignment`\\ s to this on random inputs.
    """
    if budget_w < 0:
        raise SimulationError("budget cannot be negative")
    if len(demands_w) != len(available):
        raise SimulationError("demands and availability length mismatch")
    r_lambda = clamp(r_lambda, 0.0, 1.0)
    n = len(demands_w)
    sources: List[PowerSource] = [PowerSource.NONE] * n

    active = [i for i in range(n) if available[i]]
    for i in active:
        sources[i] = PowerSource.UTILITY
    total = sum(float(demands_w[i]) for i in active)

    if total <= budget_w or not (use_sc or use_battery):
        return Assignment(tuple(sources), total, 0.0, 0.0, 0)

    order = sorted(active, key=lambda i: (-float(demands_w[i]), i))
    buffered: List[int] = []
    utility_draw = total
    for i in order:
        if utility_draw <= budget_w:
            break
        buffered.append(i)
        utility_draw -= float(demands_w[i])

    if not use_sc:
        n_sc = 0
    elif not use_battery:
        n_sc = len(buffered)
    else:
        n_sc = int(round(r_lambda * len(buffered)))
    sc_set = frozenset(buffered[:n_sc])
    sc_draw = battery_draw = 0.0
    for i in buffered:
        if i in sc_set:
            sources[i] = PowerSource.SUPERCAP
            sc_draw += float(demands_w[i])
        else:
            sources[i] = PowerSource.BATTERY
            battery_draw += float(demands_w[i])

    return Assignment(tuple(sources), utility_draw, sc_draw,
                      battery_draw, len(buffered))


__all__: Tuple[str, ...] = ("Assignment", "LoadScheduler", "reference_assign")
