"""Policy protocol shared by the six evaluated schemes (Table 2).

A policy is consulted once per control slot (10 minutes by default) and
returns a :class:`SlotPlan`; the simulation engine executes the plan tick
by tick.  The plan captures everything the schemes differ in:

* ``r_lambda`` — the fraction of buffer-served servers on the SC pool;
* ``charge_order`` — which pool absorbs valley surplus first;
* ``use_sc`` / ``use_battery`` — which pools exist for the scheme;
* ``fallback`` — whether a depleted pool's load fails over to the other
  pool (all hybrid schemes) or is simply shed (BaOnly).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SlotObservation:
    """Everything the hControl can see at a slot boundary (Section 5.1).

    Attributes:
        index: Slot number (0-based).
        start_s: Simulation time of the slot start.
        budget_w: Utility budget in force for this slot.
        sc_usable_j / battery_usable_j: Usable stored energy per pool
            (the ΔSC and ΔBA sensor feedback of Section 5.1).
        sc_nominal_j / battery_nominal_j: Pool capacities.
        last_peak_w / last_valley_w: Realized aggregate demand extremes of
            the previous slot (zero for the first slot).
        last_peak_duration_s: Mean above-budget event duration last slot.
        num_servers: Cluster size.
        sc_available / battery_available: Whether the pool is reachable
            this slot.  False under injected power-path faults (battery
            open-circuit, converter dropout); policies should not plan
            around an unreachable pool.
        predictor_corrupted: True when the peak/valley telemetry above
            was perturbed by an active sensor fault; prediction-driven
            policies should degrade to prediction-free operation and
            skip learning from this slot.
    """

    index: int
    start_s: float
    budget_w: float
    sc_usable_j: float
    battery_usable_j: float
    sc_nominal_j: float
    battery_nominal_j: float
    last_peak_w: float
    last_valley_w: float
    last_peak_duration_s: float
    num_servers: int
    sc_available: bool = True
    battery_available: bool = True
    predictor_corrupted: bool = False

    @property
    def degraded(self) -> bool:
        """True when any fault flag calls for graceful degradation."""
        return (not self.sc_available or not self.battery_available
                or self.predictor_corrupted)

    @property
    def last_mismatch_w(self) -> float:
        """Realized ΔPM of the previous slot."""
        return max(0.0, self.last_peak_w - self.last_valley_w)


@dataclass(frozen=True)
class SlotPlan:
    """One slot's execution directives for the engine."""

    r_lambda: float
    charge_order: Tuple[str, ...]
    use_sc: bool = True
    use_battery: bool = True
    fallback: bool = True
    note: str = ""


@dataclass(frozen=True)
class SlotResult:
    """What actually happened during a slot (fed back to the policy)."""

    observation: SlotObservation
    plan: SlotPlan
    sc_usable_end_j: float
    battery_usable_end_j: float
    actual_peak_w: float
    actual_valley_w: float
    actual_peak_duration_s: float
    downtime_s: float

    @property
    def actual_mismatch_w(self) -> float:
        return max(0.0, self.actual_peak_w - self.actual_valley_w)


class Policy(ABC):
    """Base class for the Table 2 power-management schemes."""

    #: Scheme name as used in the paper's figures.
    name: str = "policy"

    @abstractmethod
    def begin_slot(self, observation: SlotObservation) -> SlotPlan:
        """Decide this slot's buffer usage."""

    def end_slot(self, result: SlotResult) -> None:
        """Learning hook; default is stateless."""

    def reset(self) -> None:
        """Clear any learned state before a fresh run."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
