"""The three priority-based baselines: BaOnly, BaFirst, SCFirst (Table 2).

None of these schemes performs load-aware assignment; they fix a priority
between the pools and only flip when the preferred pool runs dry — exactly
the behaviour Section 7.1 criticizes ("they lack intelligent server
allocation policies and only employ a priority-based method").
"""

from __future__ import annotations

from .base import Policy, SlotObservation, SlotPlan

# A pool below this usable-energy fraction counts as "used up" for the
# purposes of flipping priority.
_DEPLETION_FRACTION = 0.02


def _depleted(usable_j: float, nominal_j: float) -> bool:
    if nominal_j <= 0:
        return True
    return usable_j <= _DEPLETION_FRACTION * nominal_j


class BaOnlyPolicy(Policy):
    """Homogeneous battery buffering (prior work, e.g. Govindan et al.).

    The battery pool holds the *entire* installed capacity (the paper
    compares equal-capacity systems) and there is no SC pool at all, so a
    collapsing battery sheds load directly.
    """

    name = "BaOnly"

    def begin_slot(self, observation: SlotObservation) -> SlotPlan:
        return SlotPlan(
            r_lambda=0.0,
            charge_order=("battery",),
            use_sc=False,
            use_battery=True,
            fallback=False,
            note="battery-only",
        )


class BaFirstPolicy(Policy):
    """Hybrid pools, battery priority.

    Discharges batteries first and touches SCs only once the batteries are
    empty; charges batteries first too — which is why it "may lose some
    chances to absorb renewable energy with large charging current"
    (Section 7.4) and ends up barely better than BaOnly.
    """

    name = "BaFirst"

    def begin_slot(self, observation: SlotObservation) -> SlotPlan:
        battery_dry = _depleted(observation.battery_usable_j,
                                observation.battery_nominal_j)
        return SlotPlan(
            r_lambda=1.0 if battery_dry else 0.0,
            charge_order=("battery", "sc"),
            use_sc=True,
            use_battery=True,
            fallback=True,
            note="battery-priority" + (" (battery dry)" if battery_dry else ""),
        )


class SCFirstPolicy(Policy):
    """Hybrid pools, supercapacitor priority.

    Greatly reduces round-trip loss, but once the SCs deplete "batteries
    would have to handle all the high current drawn which still leads to
    efficiency degradation" (Section 7.1).
    """

    name = "SCFirst"

    def begin_slot(self, observation: SlotObservation) -> SlotPlan:
        sc_dry = _depleted(observation.sc_usable_j, observation.sc_nominal_j)
        return SlotPlan(
            r_lambda=0.0 if sc_dry else 1.0,
            charge_order=("sc", "battery"),
            use_sc=True,
            use_battery=True,
            fallback=True,
            note="sc-priority" + (" (sc dry)" if sc_dry else ""),
        )
