"""The six evaluated power-management schemes (Table 2) and their factory.

:func:`make_policy` builds any scheme by its paper name, including the
pilot-run PAT seeding the HEB variants require.  Seeding results are
memoized per buffer configuration, since the pilot profile of a given
hardware setup is run once in practice, not once per experiment.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...config import (
    ControllerConfig,
    HybridBufferConfig,
    PATConfig,
    PredictorConfig,
)
from ...errors import ConfigurationError
from ...storage.battery import LeadAcidBattery
from ...storage.supercap import Supercapacitor
from ..pat import PowerAllocationTable
from ..profiling import seed_pat
from .base import Policy, SlotObservation, SlotPlan, SlotResult
from .priority import BaFirstPolicy, BaOnlyPolicy, SCFirstPolicy
from .heb import HebDPolicy, HebFPolicy, HebSPolicy

POLICY_NAMES: Tuple[str, ...] = (
    "BaOnly", "BaFirst", "SCFirst", "HEB-F", "HEB-S", "HEB-D")

# Pilot profiles are deterministic per buffer configuration; memoize the
# seeded entries so repeated policy construction is cheap.
_SEED_CACHE: Dict[Tuple, Tuple[Tuple[float, float, float, float], ...]] = {}

_DENSE_GRID = {
    "soc_levels": (0.34, 0.67, 1.0),
    "power_levels_w": (40.0, 80.0, 120.0, 160.0),
}
_COARSE_GRID = {
    "soc_levels": (1.0,),
    "power_levels_w": (60.0, 140.0),
}


def _build_seeded_pat(hybrid: HybridBufferConfig,
                      pat_config: Optional[PATConfig],
                      grid: dict) -> PowerAllocationTable:
    """Seed a PAT from pilot runs, with memoization."""
    pat = PowerAllocationTable(pat_config)
    cache_key = (hybrid, pat.config, grid["soc_levels"],
                 grid["power_levels_w"])
    cached = _SEED_CACHE.get(cache_key)
    if cached is not None:
        for sc_j, ba_j, power_w, ratio in cached:
            pat.add(sc_j, ba_j, power_w, ratio, source="profile")
        return pat

    sc_config = hybrid.supercap.scaled_to_energy(hybrid.sc_energy_j)
    battery_config = hybrid.battery.scaled_to_energy(hybrid.battery_energy_j)
    seed_pat(
        pat,
        sc_factory=lambda: Supercapacitor(sc_config),
        battery_factory=lambda: LeadAcidBattery(battery_config),
        sc_nominal_j=hybrid.sc_energy_j,
        battery_nominal_j=hybrid.battery_energy_j,
        soc_levels=grid["soc_levels"],
        power_levels_w=grid["power_levels_w"],
        dt=10.0,
    )
    _SEED_CACHE[cache_key] = tuple(
        (e.sc_energy_j, e.battery_energy_j, e.power_w, e.r_lambda)
        for e in pat.entries())
    return pat


def make_policy(name: str,
                hybrid: HybridBufferConfig | None = None,
                controller: ControllerConfig | None = None,
                predictor: PredictorConfig | None = None,
                pat_config: PATConfig | None = None) -> Policy:
    """Build a Table 2 scheme by name.

    Args:
        name: One of :data:`POLICY_NAMES` (case-insensitive).
        hybrid: Buffer sizing; required by the HEB variants for their
            pilot-run PAT seeding.  Defaults to the prototype 3:7 pool.
        controller: Small/large thresholds and slot length.
        predictor: Holt-Winters smoothing parameters (HEB-S / HEB-D).
        pat_config: PAT quantization and Δr settings.

    Raises:
        ConfigurationError: For an unknown scheme name.
    """
    key = name.strip().lower().replace("_", "-")
    if key == "baonly":
        return BaOnlyPolicy()
    if key == "bafirst":
        return BaFirstPolicy()
    if key == "scfirst":
        return SCFirstPolicy()

    hybrid = hybrid or HybridBufferConfig()
    if key == "heb-f":
        return HebFPolicy(controller)
    if key == "heb-s":
        pat = _build_seeded_pat(hybrid, pat_config, _COARSE_GRID)
        return HebSPolicy(pat, controller, predictor)
    if key == "heb-d":
        pat = _build_seeded_pat(hybrid, pat_config, _DENSE_GRID)
        return HebDPolicy(pat, controller, predictor)
    raise ConfigurationError(
        f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}")


__all__ = [
    "Policy",
    "SlotObservation",
    "SlotPlan",
    "SlotResult",
    "BaOnlyPolicy",
    "BaFirstPolicy",
    "SCFirstPolicy",
    "HebFPolicy",
    "HebSPolicy",
    "HebDPolicy",
    "make_policy",
    "POLICY_NAMES",
]
