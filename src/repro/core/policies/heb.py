"""The three HEB variants: HEB-F, HEB-S and HEB-D (Table 2).

All three share the small/large peak dichotomy of Section 5.2 — small
peaks go two-tier (all buffered servers on SCs, batteries as backstop),
large peaks split the buffered servers by an R_lambda ratio.  They differ
exactly along the paper's two ablation axes:

========  ==================================  ============================
Variant   peak estimate                       R_lambda source
========  ==================================  ============================
HEB-F     last slot's realized peak           naive energy-proportional
HEB-S     Holt-Winters prediction             coarse static PAT
HEB-D     Holt-Winters prediction             dense PAT + online Δr
========  ==================================  ============================

Planning quantity: the paper's ΔPM = P_peak − P_valley is the net buffer
demand in its setup, where the valley defines what the source supplies.
Under a fixed utility budget (or a solar feed) the energy the buffers must
deliver is ``max(0, P_peak − budget)``, so the planner classifies and
keys the PAT on that *deficit*; the raw peak/valley pair still feeds the
predictor.
"""

from __future__ import annotations

from typing import Optional

from ...config import ControllerConfig, PredictorConfig
from ...units import clamp
from ...workloads.synthetic import PeakClass
from ..pat import PATEntry, PowerAllocationTable
from ..peaks import classify_peak
from ..predictor import HoltWintersPredictor
from .base import Policy, SlotObservation, SlotPlan, SlotResult

_CHARGE_ORDER = ("sc", "battery")

# Safety margin on the predicted peak energy before trusting the SC pool
# to cover a large peak alone.
_SC_COVERAGE_MARGIN = 1.5


class _HebBase(Policy):
    """Shared HEB machinery: classification and plan assembly."""

    def __init__(self, controller: ControllerConfig | None = None) -> None:
        self.controller = controller or ControllerConfig()
        self._last_deficit_w = 0.0

    # -- subclass hooks -------------------------------------------------

    def estimate_peak(self, observation: SlotObservation) -> float:
        """Next-slot aggregate peak-demand estimate (variant-specific)."""
        raise NotImplementedError

    def choose_ratio(self, observation: SlotObservation,
                     deficit_w: float) -> float:
        """R_lambda for a large peak (variant-specific)."""
        raise NotImplementedError

    def estimate_duration(self, observation: SlotObservation) -> float:
        """Expected peak duration; persistence of last slot by default."""
        return observation.last_peak_duration_s

    # -- graceful degradation ---------------------------------------------

    def degraded_plan(self, observation: SlotObservation) -> SlotPlan:
        """Prediction-free fallback under fault flags (Section 5.2 spirit).

        When a buffer bank has dropped out, or the predictor's inputs are
        flagged corrupted, the PAT lookup cannot be trusted: its key (the
        predicted deficit) or its premise (both pools answering) is wrong.
        The safe plan is the two-tier small-peak policy — every buffered
        server on the surviving fast pool, the other pool as backstop —
        shrunk to whatever hardware still answers:

        * both pools up, telemetry corrupted → all-SC with battery
          fallback (the classic two-tier arrangement);
        * battery out → all-SC, no fallback target behind it;
        * SC out → all-battery, no fallback;
        * neither pool reachable → ride the utility feed alone and let
          the engine shed what the budget cannot carry.
        """
        sc_ok = observation.sc_available
        battery_ok = observation.battery_available
        if sc_ok and battery_ok:
            return SlotPlan(
                r_lambda=1.0,
                charge_order=_CHARGE_ORDER,
                fallback=True,
                note="degraded two-tier (telemetry corrupted)",
            )
        if sc_ok:
            return SlotPlan(
                r_lambda=1.0,
                charge_order=("sc",),
                use_battery=False,
                fallback=False,
                note="degraded sc-only (battery bank out)",
            )
        if battery_ok:
            return SlotPlan(
                r_lambda=0.0,
                charge_order=("battery",),
                use_sc=False,
                fallback=False,
                note="degraded battery-only (sc bank out)",
            )
        return SlotPlan(
            r_lambda=0.0,
            charge_order=(),
            use_sc=False,
            use_battery=False,
            fallback=False,
            note="degraded utility-only (no buffers reachable)",
        )

    # -- planning --------------------------------------------------------

    def begin_slot(self, observation: SlotObservation) -> SlotPlan:
        if observation.degraded:
            self._last_deficit_w = 0.0
            return self.degraded_plan(observation)
        peak = self.estimate_peak(observation)
        deficit = max(0.0, peak - observation.budget_w)
        duration = self.estimate_duration(observation)
        peak_class = classify_peak(deficit, duration, self.controller)
        self._last_deficit_w = deficit

        if peak_class is PeakClass.SMALL:
            # Two-tier: SCs exclusively; the engine's fallback path brings
            # batteries in the moment SCs run out (Section 5.2).
            return SlotPlan(
                r_lambda=1.0,
                charge_order=_CHARGE_ORDER,
                fallback=True,
                note=f"small-peak (deficit~{deficit:.0f}W)",
            )
        # Scenario awareness (Section 3.2: the ideal usage "depends on
        # power mismatching scenarios"): a large peak whose expected
        # energy fits comfortably in the SC pool is still best served by
        # SCs alone — joint discharge only pays when the peak would
        # outlast them.
        expected_energy_j = deficit * duration * _SC_COVERAGE_MARGIN
        if duration > 0 and expected_energy_j <= observation.sc_usable_j:
            return SlotPlan(
                r_lambda=1.0,
                charge_order=_CHARGE_ORDER,
                fallback=True,
                note=f"large-peak sc-covered (deficit~{deficit:.0f}W)",
            )
        r_lambda = self.choose_ratio(observation, deficit)
        return SlotPlan(
            r_lambda=r_lambda,
            charge_order=_CHARGE_ORDER,
            fallback=True,
            note=f"large-peak (deficit~{deficit:.0f}W, r={r_lambda:.2f})",
        )

    def reset(self) -> None:
        self._last_deficit_w = 0.0


class HebFPolicy(_HebBase):
    """HEB-F: "load-aware assignment based on power demand value of the
    last time-slot" — the naive end of the design space.

    Uses the previous slot's realized peak verbatim (a persistence
    forecast) and splits buffered servers in proportion to stored energy,
    ignoring the battery's rate-dependent capacity — the mistake the PAT
    exists to avoid.
    """

    name = "HEB-F"

    def estimate_peak(self, observation: SlotObservation) -> float:
        return observation.last_peak_w

    def choose_ratio(self, observation: SlotObservation,
                     deficit_w: float) -> float:
        total = observation.sc_usable_j + observation.battery_usable_j
        if total <= 1e-9:
            return 0.5
        return clamp(observation.sc_usable_j / total, 0.0, 1.0)


class HebSPolicy(_HebBase):
    """HEB-S: "load-aware assignment based on statics and limited
    profiling information" — the coarse-table ablation.

    Predicts with Holt-Winters like HEB-D, but its PAT has only a handful
    of profiled entries and is never updated, so lookups usually land on a
    mediocre nearest neighbour (profiled at full charge only).
    """

    name = "HEB-S"

    def __init__(self, pat: PowerAllocationTable,
                 controller: ControllerConfig | None = None,
                 predictor: PredictorConfig | None = None) -> None:
        super().__init__(controller)
        self.pat = pat
        self.predictor = HoltWintersPredictor(predictor)

    def estimate_peak(self, observation: SlotObservation) -> float:
        if self.predictor.observations == 0:
            return observation.last_peak_w
        return self.predictor.predict().peak_w

    def choose_ratio(self, observation: SlotObservation,
                     deficit_w: float) -> float:
        entry = self.pat.lookup(observation.sc_usable_j,
                                observation.battery_usable_j, deficit_w)
        return entry.r_lambda if entry is not None else 0.5

    def end_slot(self, result: SlotResult) -> None:
        # A slot whose telemetry was flagged corrupted teaches nothing:
        # feeding noise into Holt-Winters poisons every later forecast.
        if result.observation.predictor_corrupted:
            return
        self.predictor.observe_slot(result.actual_peak_w,
                                    result.actual_valley_w)

    def reset(self) -> None:
        super().reset()
        self.predictor = HoltWintersPredictor(self.predictor.config)


class HebDPolicy(_HebBase):
    """HEB-D: the full framework of Section 5 — Holt-Winters prediction,
    profiled PAT, and online optimization (new entries + Δr nudges,
    Figure 10 lines 12-23)."""

    name = "HEB-D"

    def __init__(self, pat: PowerAllocationTable,
                 controller: ControllerConfig | None = None,
                 predictor: PredictorConfig | None = None) -> None:
        super().__init__(controller)
        self.pat = pat
        self.predictor = HoltWintersPredictor(predictor)
        self._last_entry: Optional[PATEntry] = None
        self._last_was_large = False

    def estimate_peak(self, observation: SlotObservation) -> float:
        if self.predictor.observations == 0:
            return observation.last_peak_w
        return self.predictor.predict().peak_w

    def choose_ratio(self, observation: SlotObservation,
                     deficit_w: float) -> float:
        entry = self.pat.lookup(observation.sc_usable_j,
                                observation.battery_usable_j, deficit_w)
        self._last_entry = entry
        return entry.r_lambda if entry is not None else 0.5

    def begin_slot(self, observation: SlotObservation) -> SlotPlan:
        self._last_entry = None
        plan = super().begin_slot(observation)
        # Learn only on slots where the PAT ratio was actually exercised
        # (not small-peak or sc-covered slots, whose r_lambda is fixed).
        self._last_was_large = plan.note.startswith("large-peak (")
        return plan

    def end_slot(self, result: SlotResult) -> None:
        # Corrupted telemetry must neither update the predictor nor
        # teach the PAT — both would learn the noise, not the workload.
        if result.observation.predictor_corrupted:
            return
        self.predictor.observe_slot(result.actual_peak_w,
                                    result.actual_valley_w)
        # Only large-peak slots that actually hit the buffers teach the
        # table anything about joint allocation.
        if not self._last_was_large:
            return
        realized_deficit = max(
            0.0, result.actual_peak_w - result.observation.budget_w)
        if realized_deficit <= 0:
            return
        self.pat.record_outcome(
            sc_start_j=result.observation.sc_usable_j,
            battery_start_j=result.observation.battery_usable_j,
            power_w=realized_deficit,
            r_lambda_used=result.plan.r_lambda,
            sc_end_j=result.sc_usable_end_j,
            battery_end_j=result.battery_usable_end_j,
            matched_entry=self._last_entry,
        )

    def reset(self) -> None:
        super().reset()
        self.predictor = HoltWintersPredictor(self.predictor.config)
        self._last_entry = None
        self._last_was_large = False
