"""The Power Allocation Table (PAT) — Sections 5.2-5.3, Figure 10.

Each entry keys on the coarse-grained triple (SC energy, battery energy,
power mismatch) and stores the server ratio R_lambda to assign to SCs.
Lookups prefer an exact (quantized) match and fall back to the nearest
entry under a normalized distance — the paper's ``Similar()`` search.

Runtime optimization (Figure 10 lines 12-23): at slot end the controller
compares the realized SC:battery capacity-decline ratio against the slot's
starting ratio and nudges the entry's R_lambda by ±Δr, so profiling
inaccuracy and device aging are corrected progressively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..config import PATConfig
from ..errors import ConfigurationError
from ..units import clamp

Key = Tuple[float, float, float]


@dataclass
class PATEntry:
    """One allocation rule: state key -> R_lambda.

    Attributes:
        sc_energy_j / battery_energy_j / power_w: Quantized state key.
        r_lambda: Fraction of buffer-served servers assigned to SCs.
        updates: How many times online optimization touched this entry.
        source: "profile" for pilot-seeded entries, "online" for entries
            added at runtime (Figure 10 line 15).
    """

    sc_energy_j: float
    battery_energy_j: float
    power_w: float
    r_lambda: float
    updates: int = 0
    source: str = "profile"

    @property
    def key(self) -> Key:
        return (self.sc_energy_j, self.battery_energy_j, self.power_w)


class PowerAllocationTable:
    """The hControl's lookup table of load-assignment ratios."""

    def __init__(self, config: PATConfig | None = None) -> None:
        self.config = config or PATConfig()
        self._entries: Dict[Key, PATEntry] = {}
        self.lookups = 0
        self.exact_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Tuple[PATEntry, ...]:
        """All entries (stable order for reproducibility)."""
        return tuple(self._entries[key] for key in sorted(self._entries))

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------

    def quantize(self, sc_energy_j: float, battery_energy_j: float,
                 power_w: float) -> Key:
        """Round a raw state to the table's coarse grid (Figure 10 line 14)."""
        eq = self.config.energy_quantum_j
        pq = self.config.power_quantum_w
        return (round(sc_energy_j / eq) * eq,
                round(battery_energy_j / eq) * eq,
                round(power_w / pq) * pq)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def add(self, sc_energy_j: float, battery_energy_j: float,
            power_w: float, r_lambda: float,
            source: str = "profile") -> PATEntry:
        """Insert (or overwrite) an entry at the quantized key."""
        if not 0.0 <= r_lambda <= 1.0:
            raise ConfigurationError(
                f"r_lambda must lie in [0, 1], got {r_lambda!r}")
        if len(self._entries) >= self.config.max_entries:
            self._evict_one()
        key = self.quantize(sc_energy_j, battery_energy_j, power_w)
        entry = PATEntry(key[0], key[1], key[2], r_lambda, source=source)
        self._entries[key] = entry
        return entry

    def _evict_one(self) -> None:
        """Drop the least-updated online entry to bound table growth."""
        online = [e for e in self._entries.values() if e.source == "online"]
        victims = online or list(self._entries.values())
        victim = min(victims, key=lambda e: (e.updates, e.key))
        del self._entries[victim.key]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, sc_energy_j: float, battery_energy_j: float,
               power_w: float) -> Optional[PATEntry]:
        """Exact-then-nearest search (Figure 10 lines 2-10).

        Returns None only when the table is empty.
        """
        self.lookups += 1
        if not self._entries:
            return None
        key = self.quantize(sc_energy_j, battery_energy_j, power_w)
        entry = self._entries.get(key)
        if entry is not None:
            self.exact_hits += 1
            return entry
        return self._nearest(key)

    def _nearest(self, key: Key) -> PATEntry:
        """The paper's Similar(): nearest entry in normalized state space."""
        eq = self.config.energy_quantum_j
        pq = self.config.power_quantum_w

        def distance(entry_key: Key) -> float:
            return (((entry_key[0] - key[0]) / eq) ** 2
                    + ((entry_key[1] - key[1]) / eq) ** 2
                    + ((entry_key[2] - key[2]) / pq) ** 2)

        best_key = min(sorted(self._entries), key=distance)
        return self._entries[best_key]

    # ------------------------------------------------------------------
    # Online optimization (Figure 10 lines 12-23)
    # ------------------------------------------------------------------

    def record_outcome(self,
                       sc_start_j: float, battery_start_j: float,
                       power_w: float, r_lambda_used: float,
                       sc_end_j: float, battery_end_j: float,
                       matched_entry: Optional[PATEntry]) -> PATEntry:
        """Fold a finished slot's outcome back into the table.

        If the slot's state had no (quantized) entry, add one seeded with
        the ratio actually used.  Otherwise nudge the matched entry:
        a battery that declined *faster* than the starting balance implies
        too much battery load, so R_lambda rises by Δr; the converse
        lowers it.
        """
        key = self.quantize(sc_start_j, battery_start_j, power_w)
        existing = self._entries.get(key)
        if existing is None or matched_entry is None:
            return self.add(sc_start_j, battery_start_j, power_w,
                            clamp(r_lambda_used, 0.0, 1.0), source="online")

        start_ratio = _safe_ratio(sc_start_j, battery_start_j)
        end_ratio = _safe_ratio(sc_end_j, battery_end_j)
        delta = self.config.delta_r
        if end_ratio > start_ratio:
            # Battery fell faster than SC: push more servers onto SCs.
            existing.r_lambda = clamp(existing.r_lambda + delta, 0.0, 1.0)
        elif end_ratio < start_ratio:
            existing.r_lambda = clamp(existing.r_lambda - delta, 0.0, 1.0)
        existing.updates += 1
        return existing


def _safe_ratio(numerator: float, denominator: float) -> float:
    """SC:battery energy ratio that tolerates an empty battery pool."""
    if denominator <= 1e-9:
        return float("inf") if numerator > 1e-9 else 1.0
    return numerator / denominator
