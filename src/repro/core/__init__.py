"""The paper's contribution: the HEB power-management framework.

Section 5's three pillars map onto:

* :mod:`repro.core.predictor` — Holt-Winters prediction of next-slot
  peak/valley power;
* :mod:`repro.core.pat` (+ :mod:`repro.core.profiling`) — the Power
  Allocation Table and its pilot-run seeding and online Δr optimization;
* :mod:`repro.core.scheduler` — turning an R_lambda ratio into per-server
  relay assignments;
* :mod:`repro.core.policies` — the six evaluated schemes of Table 2.
"""

from .advisor import SizingResult, right_size_buffer
from .predictor import HoltWintersPredictor, SlotPrediction
from .peaks import PeakAnalysis, analyze_slot, classify_peak
from .pat import PowerAllocationTable, PATEntry
from .profiling import profile_optimal_ratio, runtime_for_ratio, seed_pat
from .scheduler import LoadScheduler, Assignment
from .policies import (
    Policy,
    SlotObservation,
    SlotPlan,
    SlotResult,
    BaOnlyPolicy,
    BaFirstPolicy,
    SCFirstPolicy,
    HebFPolicy,
    HebSPolicy,
    HebDPolicy,
    make_policy,
    POLICY_NAMES,
)

__all__ = [
    "SizingResult",
    "right_size_buffer",
    "HoltWintersPredictor",
    "SlotPrediction",
    "PeakAnalysis",
    "analyze_slot",
    "classify_peak",
    "PowerAllocationTable",
    "PATEntry",
    "profile_optimal_ratio",
    "runtime_for_ratio",
    "seed_pat",
    "LoadScheduler",
    "Assignment",
    "Policy",
    "SlotObservation",
    "SlotPlan",
    "SlotResult",
    "BaOnlyPolicy",
    "BaFirstPolicy",
    "SCFirstPolicy",
    "HebFPolicy",
    "HebSPolicy",
    "HebDPolicy",
    "make_policy",
    "POLICY_NAMES",
]
