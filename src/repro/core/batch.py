"""Lane-parallel relay assignment for the batched engine.

:class:`BatchScheduler` computes, for N scenario lanes at once, exactly
what :func:`repro.core.scheduler.reference_assign` computes per lane —
the memoized fast paths in :class:`~repro.core.scheduler.LoadScheduler`
are pure caches of the reference semantics, so the batch path targets
the reference directly.

Exactness notes mirrored from the scalar code:

* totals accumulate column-by-column in server-index order (a masked
  running sum), never via ``np.sum`` whose pairwise tree reorders terms
  beyond 8 elements;
* the descending-demand order is a keyed *stable* argsort — identical
  tie-breaking to ``sorted(key=lambda i: (-demand[i], i))``, with
  unavailable servers keyed ``inf`` so they sort past every active one;
* the greedy cutoff runs as a rank loop with a monotone take mask
  (utility draw only decreases), so an early break when no lane takes
  a rank is safe;
* ``np.rint`` is round-half-even like Python's ``round``, so the SC
  pool split matches ``int(round(r_lambda * n_buffered))`` bit-for-bit.

The caller owns the per-slot invariants: ``r_lambda`` arrives already
clamped (with the scalar's NaN -> 1.0 quirk) because it is constant
within a slot, and ``available=None`` declares every server available —
both let the per-tick fast path skip work the slot boundary already
did.  On the all-within fast path the returned draw/count arrays are
shared read-only zeros and ``sources`` is a shared read-only
all-UTILITY template; consumers that mutate (the cluster's shed paths)
copy-on-write.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..server.batch import (SOURCE_BATTERY, SOURCE_NONE, SOURCE_SUPERCAP,
                            SOURCE_UTILITY)

_INF = float("inf")


class BatchAssignment:
    """One tick's relay plans for every lane.

    Attributes:
        sources: (lanes, servers) int8 source codes.
        utility_draw_w: (lanes,) demand left on the utility feed.
        sc_draw_w: (lanes,) demand assigned to the SC pool.
        battery_draw_w: (lanes,) demand assigned to the battery pool.
        n_buffered: (lanes,) servers moved off utility.
        all_utility: True when no lane buffered anything this tick —
            the draw/count arrays are all zero and buffer service can
            be skipped wholesale.
    """

    __slots__ = ("sources", "utility_draw_w", "sc_draw_w",
                 "battery_draw_w", "n_buffered", "all_utility")

    def __init__(self, sources: np.ndarray, utility_draw_w: np.ndarray,
                 sc_draw_w: np.ndarray, battery_draw_w: np.ndarray,
                 n_buffered: np.ndarray, all_utility: bool = False) -> None:
        self.sources = sources
        self.utility_draw_w = utility_draw_w
        self.sc_draw_w = sc_draw_w
        self.battery_draw_w = battery_draw_w
        self.n_buffered = n_buffered
        self.all_utility = all_utility


class BatchScheduler:
    """Stateless lane-parallel twin of :class:`LoadScheduler`."""

    def __init__(self, n: int, num_servers: int) -> None:
        self.n = n
        self.num_servers = num_servers
        self._zeros = np.zeros(n)
        self._zeros.setflags(write=False)
        self._zeros_i = np.zeros(n, dtype=np.int64)
        self._zeros_i.setflags(write=False)
        self._template = np.full((n, num_servers), SOURCE_UTILITY,
                                 dtype=np.int8)
        self._template.setflags(write=False)

    def assign(self,
               demands_w: np.ndarray,
               available: Optional[np.ndarray],
               budget_w: np.ndarray,
               r_lambda: np.ndarray,
               use_sc: np.ndarray,
               use_battery: np.ndarray,
               no_pools: Optional[np.ndarray] = None,
               total: Optional[np.ndarray] = None) -> BatchAssignment:
        """Relay plans for one tick across all lanes.

        Args:
            demands_w: (lanes, servers) per-server demand.
            available: (lanes, servers) availability mask, or ``None``
                when every server is available.
            budget_w: (lanes,) utility budgets.
            r_lambda: (lanes,) SC-pool fractions, already clamped to
                [0, 1] with the scalar's NaN -> 1.0 quirk.
            use_sc / use_battery: (lanes,) pool-usability masks.
            no_pools: optional precomputed ``~use_sc & ~use_battery``
                (constant within a slot).
            total: optional precomputed demand totals (valid only with
                ``available=None``); may be a read-through view the
                caller must not see mutated.
        """
        n, s = demands_w.shape
        if total is None:
            # Active total, accumulated in server-index order.
            total = np.zeros(n)
            if available is None:
                for j in range(s):
                    total = total + demands_w[:, j]
            else:
                for j in range(s):
                    total = total + np.where(available[:, j],
                                             demands_w[:, j], 0.0)

        if no_pools is None:
            no_pools = ~use_sc & ~use_battery
        within = (total <= budget_w) | no_pools
        if np.count_nonzero(within) == n:
            # The shared template never flows into the scatter path
            # below — this branch returns, and the mutable plan always
            # starts from a fresh array.
            return BatchAssignment(
                self._template if available is None
                else np.where(available, SOURCE_UTILITY,
                              SOURCE_NONE).astype(np.int8),
                total, self._zeros, self._zeros,
                self._zeros_i, all_utility=True)

        sources = np.where(available, SOURCE_UTILITY,
                           SOURCE_NONE).astype(np.int8) \
            if available is not None else \
            np.full((n, s), SOURCE_UTILITY, dtype=np.int8)
        utility_draw = total
        sc_draw = self._zeros
        battery_draw = self._zeros

        # Descending-demand order; unavailable servers key to +inf so
        # they sort after every active server and are never taken.
        if available is None:
            order = np.argsort(-demands_w, axis=-1, kind="stable")
            rank_avail = None
        else:
            order = np.argsort(np.where(available, -demands_w, _INF),
                               axis=-1, kind="stable")
            rank_avail = np.take_along_axis(available, order, axis=-1)
        rank_demand = np.take_along_axis(demands_w, order, axis=-1)

        over = ~within
        took = np.zeros((n, s), dtype=bool)
        for r in range(s):
            take = over & (utility_draw > budget_w)
            if rank_avail is not None:
                take = take & rank_avail[:, r]
            if not np.count_nonzero(take):
                break  # monotone: no lane will take a later rank either
            took[:, r] = take
            # demand * mask is the demand exactly on taken lanes and an
            # exact +0.0 elsewhere, and the draw never reaches -0.0, so
            # the unmasked subtract matches the masked update bitwise.
            utility_draw = utility_draw - rank_demand[:, r] * take
        n_buffered = took.sum(axis=1, dtype=np.int64)

        n_sc = np.where(
            ~use_sc, 0,
            np.where(~use_battery, n_buffered,
                     np.rint(r_lambda * n_buffered))).astype(np.int64)

        # Pool assembly in rank (descending-demand) order, matching the
        # scalar's buffered-order accumulation of each pool total.
        ranks_taken = int(np.count_nonzero(  # repro: noqa[RPR604] cross-lane rank count only bounds the assembly loop; per-lane took_r masks keep lanes independent
            np.count_nonzero(took, axis=0)))
        for r in range(ranks_taken):
            took_r = took[:, r]
            on_sc = took_r & (r < n_sc)
            on_ba = took_r ^ on_sc  # took & ~(r < n_sc)
            # Same exact demand-times-mask trick as the greedy cutoff.
            sc_draw = sc_draw + rank_demand[:, r] * on_sc
            battery_draw = battery_draw + rank_demand[:, r] * on_ba
            lanes_sc = np.flatnonzero(on_sc)
            if lanes_sc.size:
                sources[lanes_sc, order[lanes_sc, r]] = SOURCE_SUPERCAP
            lanes_ba = np.flatnonzero(on_ba)
            if lanes_ba.size:
                sources[lanes_ba, order[lanes_ba, r]] = SOURCE_BATTERY

        return BatchAssignment(sources, utility_draw, sc_draw,
                               battery_draw, n_buffered)


__all__ = ["BatchAssignment", "BatchScheduler"]
