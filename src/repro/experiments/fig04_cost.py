"""Figure 4: initial vs amortized cost of storage technologies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..tco import STORAGE_TECHNOLOGIES, amortized_cost_per_kwh_cycle


@dataclass(frozen=True)
class CostRow:
    """One technology's Figure 4 entry."""

    name: str
    initial_low: float
    initial_high: float
    amortized_low: float
    amortized_high: float


def run_fig04() -> Dict[str, CostRow]:
    """Initial ($/kWh) and amortized ($/kWh/cycle) costs per technology."""
    rows: Dict[str, CostRow] = {}
    for name, tech in STORAGE_TECHNOLOGIES.items():
        rows[name] = CostRow(
            name=name,
            initial_low=tech.initial_cost_low,
            initial_high=tech.initial_cost_high,
            amortized_low=amortized_cost_per_kwh_cycle(tech),
            amortized_high=amortized_cost_per_kwh_cycle(tech,
                                                        use_high=True),
        )
    return rows


def format_fig04(rows: Dict[str, CostRow]) -> str:
    lines = ["Figure 4 — storage technology costs",
             f"{'technology':>15s} {'initial $/kWh':>18s} "
             f"{'amortized $/kWh/cycle':>24s}"]
    for name, row in rows.items():
        lines.append(
            f"{name:>15s} {row.initial_low:>8.0f}-{row.initial_high:<8.0f} "
            f"{row.amortized_low:>11.3f}-{row.amortized_high:<11.3f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig04(run_fig04()))


if __name__ == "__main__":  # pragma: no cover
    main()
