"""Resilience sweep: downtime vs fault intensity across architectures.

The paper's availability argument (Section 7.2) is made under clean
power.  This experiment stresses it: a parameterized fault scenario —
utility brownout, a hard outage, battery aging, and sensor noise, all
scaled by one ``intensity`` knob in [0, 1] — is injected into BaOnly,
SCFirst, and HEB-D runs, and aggregate server downtime is compared as
the scenario worsens.  Intensity 0 is the fault-free baseline (an empty
schedule, bit-identical to an ordinary run); intensity 1 is the full
storm.

The interesting question is *graceful degradation*: HEB-D detects
corrupted telemetry and unreachable pools and falls back to the two-tier
plan, so its downtime should grow no faster than the static
architectures it beats under clean power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import (
    BatteryCellAging,
    FaultSchedule,
    SensorNoise,
    UtilityBrownout,
    UtilityOutage,
)
from ..runner import ExperimentSetup, RunRequest, get_runner
from ..units import hours

#: The three architectures of the availability comparison: battery-only
#: (the conventional UPS), SC-first (naive hybrid), and the full HEB.
SCHEMES: Tuple[str, ...] = ("BaOnly", "SCFirst", "HEB-D")

INTENSITIES: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

# Full-storm (intensity 1.0) scenario parameters; every knob scales
# linearly down to nothing at intensity 0.
_MAX_BROWNOUT_DEPTH = 0.4     # budget drops to 60% of nominal
_MAX_OUTAGE_S = 300.0         # 5-minute hard outage
_MAX_AGING_FADE = 0.25        # quarter of battery capacity gone
_MAX_SENSOR_SIGMA = 0.3      # 30% multiplicative telemetry noise


@dataclass(frozen=True)
class ResiliencePoint:
    """One (scheme, intensity) sweep point."""

    scheme: str
    intensity: float
    downtime_s: float
    downtime_fraction: float
    lifetime_years: float
    fault_downtime_s: Optional[Dict[str, float]]


def fault_schedule_for(intensity: float, duration_s: float,
                       seed: int = 0) -> FaultSchedule:
    """The sweep's fault scenario at one intensity in [0, 1].

    The storm is laid out over the run: a brownout window through the
    second quarter, battery aging at the midpoint, a hard outage at the
    start of the final quarter, and sensor noise over the second half.
    At intensity 0 the schedule is empty (fault-free baseline).
    """
    if intensity <= 0.0:
        return FaultSchedule.empty()
    quarter = duration_s / 4.0
    events = (
        UtilityBrownout(
            start_s=quarter,
            duration_s=quarter,
            budget_fraction=1.0 - _MAX_BROWNOUT_DEPTH * intensity),
        BatteryCellAging(
            start_s=2.0 * quarter,
            fade_fraction=_MAX_AGING_FADE * intensity,
            resistance_growth=1.0 + intensity),
        UtilityOutage(
            start_s=3.0 * quarter,
            duration_s=_MAX_OUTAGE_S * intensity),
        SensorNoise(
            start_s=2.0 * quarter,
            duration_s=2.0 * quarter,
            sigma_fraction=_MAX_SENSOR_SIGMA * intensity),
    )
    return FaultSchedule.of(*events, seed=seed)


def run_resilience(duration_h: float = 2.0, seed: int = 1,
                   workload: str = "PR",
                   schemes: Sequence[str] = SCHEMES,
                   intensities: Sequence[float] = INTENSITIES,
                   ) -> Dict[str, List[ResiliencePoint]]:
    """Sweep fault intensity for each scheme; returns points per scheme."""
    schemes = list(schemes)
    intensities = list(intensities)
    setup = ExperimentSetup(duration_h=duration_h, seed=seed)
    duration_s = hours(duration_h)

    requests: List[RunRequest] = []
    for scheme in schemes:
        for intensity in intensities:
            requests.append(RunRequest(
                scheme, workload, setup=setup,
                faults=fault_schedule_for(intensity, duration_s,
                                          seed=seed)))
    results = get_runner().map(requests)

    points: Dict[str, List[ResiliencePoint]] = {}
    cursor = 0
    for scheme in schemes:
        rows: List[ResiliencePoint] = []
        for intensity in intensities:
            metrics = results[cursor].metrics
            cursor += 1
            rows.append(ResiliencePoint(
                scheme=scheme,
                intensity=intensity,
                downtime_s=metrics.server_downtime_s,
                downtime_fraction=metrics.downtime_fraction,
                lifetime_years=metrics.battery_lifetime_years,
                fault_downtime_s=metrics.fault_downtime_s,
            ))
        points[scheme] = rows
    return points


def format_resilience(points: Dict[str, List[ResiliencePoint]]) -> str:
    """Downtime table: one row per intensity, one column per scheme."""
    schemes = sorted(points)
    intensities = [row.intensity for row in points[schemes[0]]]
    header = f"{'intensity':>9s}" + "".join(
        f" {scheme:>12s}" for scheme in schemes)
    lines = ["Resilience — aggregate server downtime (s) vs fault "
             "intensity",
             header]
    for index, intensity in enumerate(intensities):
        cells = "".join(
            f" {points[scheme][index].downtime_s:>12.1f}"
            for scheme in schemes)
        lines.append(f"{intensity:>9.2f}{cells}")

    # Downtime attribution at the full storm, where every class fired.
    lines.append("")
    lines.append("Full-storm downtime attribution (s):")
    for scheme in schemes:
        worst = points[scheme][-1]
        buckets = worst.fault_downtime_s or {}
        detail = ", ".join(f"{kind}={seconds:.1f}"
                           for kind, seconds in buckets.items())
        lines.append(f"  {scheme:>8s}: {detail if detail else '(none)'}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_resilience(run_resilience()))


if __name__ == "__main__":  # pragma: no cover
    main()
