"""Load-test harness for the scenario service.

Drives N concurrent asyncio clients against a running (or self-hosted)
service with a mixed hot/cold request distribution — the bursty,
repetition-heavy shape real deployments see, where most submissions
should be answered by the content-addressed cache and only genuinely
new scenarios cost a simulation.

Phases:

1. **Warm** — every spec in the hot pool is submitted once and run to
   completion, so the measured phase's "hot" draws are honest cache
   economics, not first-run simulation cost.
2. **Measured** — each of ``clients`` concurrent clients issues
   ``requests_per_client`` submissions; a draw is *hot* (uniform over
   the warmed pool) with probability ``hot_fraction``, otherwise *cold*
   (a fresh, never-seen seed).  Every submission is polled to a
   terminal state; 429 rejections are honoured via ``Retry-After`` and
   retried.

The report's ``warm_hit_rate`` comes from the service's own ``/stats``
delta across the measured phase (registry + cache + coalesced hits over
submissions), so it counts exactly what the server did, not what the
clients believe.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ProtocolError
from ..runner import ExperimentRunner, ExperimentSetup, ResultCache, \
    RunRequest
from ..service import ScenarioServer, ScenarioService, ServiceClient, \
    request_to_spec

#: Workloads the spec pool cycles through (mirrors the batch benchmark).
POOL_WORKLOADS = ("PR", "WC", "DA", "WS", "MS", "DFS", "HB", "TS")
#: Seed space reserved for cold (never-repeated) draws.
COLD_SEED_BASE = 100_000


@dataclass(frozen=True)
class LoadTestReport:
    """What one load-test run measured.

    Attributes:
        clients: Concurrent client connections sustained.
        requests: Submissions completed to a terminal state.
        rejected_429: Backpressure rejections absorbed (and retried).
        failed: Submissions whose run ended ``failed``.
        wall_s: Measured-phase wall time.
        requests_per_s: ``requests / wall_s``.
        p50_ms / p99_ms: Submit-to-terminal latency percentiles.
        warm_hit_rate: Server-side fraction of measured-phase
            submissions answered without a new simulation.
        executed: Simulations actually run during the measured phase.
        stats: Final ``/stats`` snapshot of the service.
    """

    clients: int
    requests: int
    rejected_429: int
    failed: int
    wall_s: float
    requests_per_s: float
    p50_ms: float
    p99_ms: float
    warm_hit_rate: float
    executed: int
    stats: Dict[str, Any]


def build_spec_pool(unique: int, duration_h: float,
                    scheme: str = "HEB-D") -> List[Dict[str, Any]]:
    """The hot pool: ``unique`` distinct, tiny, batch-compatible specs."""
    specs = []
    for index in range(unique):
        request = RunRequest(
            scheme=scheme,
            workload=POOL_WORKLOADS[index % len(POOL_WORKLOADS)],
            setup=ExperimentSetup(duration_h=duration_h,
                                  seed=1 + index // len(POOL_WORKLOADS)))
        specs.append(request_to_spec(request))
    return specs


def _cold_spec(draw_index: int, duration_h: float,
               scheme: str = "HEB-D") -> Dict[str, Any]:
    """A spec no other draw ever repeats (a guaranteed first sight)."""
    request = RunRequest(
        scheme=scheme,
        workload=POOL_WORKLOADS[draw_index % len(POOL_WORKLOADS)],
        setup=ExperimentSetup(duration_h=duration_h,
                              seed=COLD_SEED_BASE + draw_index))
    return request_to_spec(request)


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


async def _client_worker(host: str, port: int,
                         specs: Sequence[Dict[str, Any]],
                         latencies_ms: List[float],
                         counters: Dict[str, int]) -> None:
    client = ServiceClient(host, port)
    try:
        for spec in specs:
            start_s = perf_counter()
            snapshot, rejections = await client.submit_and_wait(spec)
            latencies_ms.append((perf_counter() - start_s) * 1e3)
            counters["rejected"] += rejections
            if snapshot["status"] == "failed":
                counters["failed"] += 1
    finally:
        await client.close()


async def run_loadtest_async(host: str, port: int, clients: int = 100,
                             requests_per_client: int = 10,
                             hot_fraction: float = 0.95,
                             unique: int = 12,
                             duration_h: float = 1.0 / 30.0,
                             seed: int = 1) -> LoadTestReport:
    """Drive a running service; see the module docstring for phases."""
    rng = random.Random(seed)
    pool = build_spec_pool(unique, duration_h)

    # Warm phase: pay every hot spec's one simulation up front.
    warm_client = ServiceClient(host, port)
    try:
        for spec in pool:
            await warm_client.submit_and_wait(spec)
        stats_before = await warm_client.stats()
    finally:
        await warm_client.close()

    # Deal each client its request sequence ahead of time so the
    # measured phase is pure traffic.
    cold_draws = 0
    plans: List[List[Dict[str, Any]]] = []
    for _ in range(clients):
        plan = []
        for _ in range(requests_per_client):
            if rng.random() < hot_fraction:
                plan.append(pool[rng.randrange(len(pool))])
            else:
                plan.append(_cold_spec(cold_draws, duration_h))
                cold_draws += 1
        plans.append(plan)

    latencies_ms: List[float] = []
    counters = {"rejected": 0, "failed": 0}
    start_s = perf_counter()
    await asyncio.gather(*(
        _client_worker(host, port, plan, latencies_ms, counters)
        for plan in plans))
    wall_s = perf_counter() - start_s

    tail_client = ServiceClient(host, port)
    try:
        stats_after = await tail_client.stats()
    finally:
        await tail_client.close()

    submissions = stats_after["submissions"] - stats_before["submissions"]
    hits = stats_after["hits"] - stats_before["hits"]
    executed = stats_after["executed"] - stats_before["executed"]
    latencies_ms.sort()
    requests = len(latencies_ms)
    return LoadTestReport(
        clients=clients,
        requests=requests,
        rejected_429=counters["rejected"],
        failed=counters["failed"],
        wall_s=round(wall_s, 6),
        requests_per_s=round(requests / wall_s, 2) if wall_s else 0.0,
        p50_ms=round(_percentile(latencies_ms, 0.50), 3),
        p99_ms=round(_percentile(latencies_ms, 0.99), 3),
        warm_hit_rate=(round(hits / submissions, 4) if submissions
                       else 0.0),
        executed=executed,
        stats=stats_after,
    )


async def _self_hosted(clients: int, requests_per_client: int,
                       hot_fraction: float, unique: int,
                       duration_h: float, seed: int,
                       jobs: Optional[int], cache_dir: Optional[str],
                       max_queue: int) -> LoadTestReport:
    cache = ResultCache(cache_dir) if cache_dir is not None else \
        ResultCache()
    runner = ExperimentRunner(jobs=jobs, cache=cache)
    service = ScenarioService(runner, max_queue=max_queue)
    server = ScenarioServer(service, host="127.0.0.1", port=0)
    await server.start()
    try:
        return await run_loadtest_async(
            server.host, server.port, clients=clients,
            requests_per_client=requests_per_client,
            hot_fraction=hot_fraction, unique=unique,
            duration_h=duration_h, seed=seed)
    finally:
        await server.close(drain=True)


def run_loadtest(host: Optional[str] = None, port: Optional[int] = None,
                 clients: int = 100, requests_per_client: int = 10,
                 hot_fraction: float = 0.95, unique: int = 12,
                 duration_h: float = 1.0 / 30.0, seed: int = 1,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 max_queue: int = 256) -> LoadTestReport:
    """Synchronous entry point: target a live server or self-host one.

    With ``host``/``port`` the load test targets a running service;
    without them it spins a server on a loopback port in-process (its
    runner uses ``jobs``/``cache_dir``/``max_queue``) and tears it down
    afterwards.
    """
    if (host is None) != (port is None):
        raise ProtocolError("pass both host and port, or neither")
    if host is not None and port is not None:
        return asyncio.run(run_loadtest_async(
            host, port, clients=clients,
            requests_per_client=requests_per_client,
            hot_fraction=hot_fraction, unique=unique,
            duration_h=duration_h, seed=seed))
    return asyncio.run(_self_hosted(
        clients, requests_per_client, hot_fraction, unique,
        duration_h, seed, jobs, cache_dir, max_queue))


def format_loadtest(report: LoadTestReport) -> str:
    """Paper-style summary block for the CLI."""
    lines = [
        f"service load test: {report.clients} concurrent clients, "
        f"{report.requests} requests in {report.wall_s:.3f} s",
        f"  throughput     : {report.requests_per_s:,.1f} requests/s",
        f"  latency        : p50 {report.p50_ms:.1f} ms, "
        f"p99 {report.p99_ms:.1f} ms",
        f"  warm hit rate  : {report.warm_hit_rate:.1%}",
        f"  simulations    : {report.executed} executed, "
        f"{report.failed} failed",
        f"  backpressure   : {report.rejected_429} x 429 absorbed",
    ]
    return "\n".join(lines)


__all__ = [
    "LoadTestReport",
    "build_spec_pool",
    "format_loadtest",
    "run_loadtest",
    "run_loadtest_async",
]
