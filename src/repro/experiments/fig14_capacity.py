"""Figure 14: the impact of total installed capacity (via DoD levels).

Fixed 3:7 ratio; the paper emulates capacity growth by lowering the
depth-of-discharge ceiling from 80% down to 40% usable ("the higher DoD
has less useable capacity" — note the paper lists DoD 40..80% as *growth*
because its DoD counts the reserved fraction).  We sweep the usable
fraction directly: usable = {40%, 50%, 60%, 70%, 80%} of the installed
energy on both pools, under HEB-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..runner import RunRequest, get_runner
from .common import ExperimentSetup

DOD_LEVELS: Tuple[float, ...] = (0.4, 0.5, 0.6, 0.7, 0.8)


@dataclass(frozen=True)
class CapacityPoint:
    """Mean metrics at one usable-capacity level."""

    dod: float
    energy_efficiency: float
    downtime_s: float
    lifetime_years: float
    reu: float


def _mean(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else 0.0


def run_fig14(duration_h: float = 3.0, seed: int = 1,
              workloads: Optional[Sequence[str]] = None,
              dod_levels: Sequence[float] = DOD_LEVELS,
              downtime_budget_w: float = 248.0,
              ) -> Dict[float, CapacityPoint]:
    """Sweep usable capacity (DoD on both pools) with HEB-D."""
    workloads = list(workloads) if workloads else ["DA", "TS"]

    requests: List[RunRequest] = []
    for dod in dod_levels:
        setup = ExperimentSetup(duration_h=duration_h, seed=seed,
                                battery_dod=dod, sc_dod=dod)
        stressed = ExperimentSetup(duration_h=duration_h, seed=seed,
                                   battery_dod=dod, sc_dod=dod,
                                   budget_w=downtime_budget_w)
        requests += [RunRequest("HEB-D", w, setup=setup) for w in workloads]
        requests += [RunRequest("HEB-D", w, setup=stressed)
                     for w in workloads]
        requests += [RunRequest("HEB-D", w, setup=setup, renewable=True)
                     for w in workloads]
    results = get_runner().map(requests)

    points: Dict[float, CapacityPoint] = {}
    per_level = 3 * len(workloads)
    for position, dod in enumerate(dod_levels):
        chunk = results[position * per_level:(position + 1) * per_level]
        ee_runs = chunk[:len(workloads)]
        down_runs = chunk[len(workloads):2 * len(workloads)]
        reu_runs = chunk[2 * len(workloads):]
        points[dod] = CapacityPoint(
            dod=dod,
            energy_efficiency=_mean(
                r.metrics.energy_efficiency for r in ee_runs),
            downtime_s=_mean(
                r.metrics.server_downtime_s for r in down_runs),
            lifetime_years=_mean(
                r.metrics.battery_lifetime_years for r in ee_runs),
            reu=_mean(r.metrics.reu for r in reu_runs),
        )
    return points


def format_fig14(points: Dict[float, CapacityPoint]) -> str:
    lines = ["Figure 14 — usable capacity growth (DoD sweep, HEB-D)",
             f"{'usable':>7s} {'EE':>7s} {'downtime(s)':>12s} "
             f"{'lifetime(y)':>12s} {'REU':>7s}"]
    for dod in sorted(points):
        point = points[dod]
        lines.append(f"{dod:>6.0%} {point.energy_efficiency:>7.3f} "
                     f"{point.downtime_s:>12.0f} "
                     f"{point.lifetime_years:>12.2f} {point.reu:>7.3f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig14(run_fig14()))


if __name__ == "__main__":  # pragma: no cover
    main()
