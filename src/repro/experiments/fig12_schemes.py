"""Figure 12: the headline scheme comparison.

Four panels, all comparing the six Table 2 schemes:

(a) energy efficiency  — 8 workloads, 260 W budget;
(b) server downtime    — budget intentionally lowered to trigger downtime;
(c) battery lifetime   — Ah-throughput estimates from panel (a)'s runs;
(d) REU                — solar-fed runs.

Paper headline (HEB-D vs BaOnly): EE +39.7%, downtime −41%, lifetime
4.7x, REU +81.2%.  We reproduce the ordering and the direction/rough
magnitude of every gap; EXPERIMENTS.md records measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core import POLICY_NAMES
from ..runner import RunRequest, get_runner
from ..sim import RunResult, compare_schemes
from ..workloads import (
    LARGE_PEAK_WORKLOADS,
    SMALL_PEAK_WORKLOADS,
    workload_names,
)
from .common import ExperimentSetup


@dataclass
class Fig12Results:
    """All four panels' raw runs plus the derived comparison table."""

    efficiency_runs: List[RunResult]
    downtime_runs: List[RunResult]
    renewable_runs: List[RunResult]
    table: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def scheme_rows(self) -> Dict[str, Dict[str, float]]:
        """Per-scheme summary across all panels (the printed table)."""
        if self.table:
            return self.table
        efficiency = compare_schemes(self.efficiency_runs)
        downtime = compare_schemes(self.downtime_runs)
        renewable = compare_schemes(self.renewable_runs)
        rows: Dict[str, Dict[str, float]] = {}
        for scheme in efficiency:
            rows[scheme] = {
                "energy_efficiency": efficiency[scheme]["energy_efficiency"],
                "ee_vs_baonly": efficiency[scheme].get(
                    "energy_efficiency_vs_baseline", 1.0),
                "downtime_s": downtime[scheme]["server_downtime_s"],
                "downtime_vs_baonly": downtime[scheme].get(
                    "server_downtime_vs_baseline", 1.0),
                "lifetime_years": efficiency[scheme][
                    "battery_lifetime_years"],
                "lifetime_vs_baonly": efficiency[scheme].get(
                    "battery_lifetime_vs_baseline", 1.0),
            }
            if "reu" in renewable.get(scheme, {}):
                rows[scheme]["reu"] = renewable[scheme]["reu"]
                rows[scheme]["reu_vs_baonly"] = renewable[scheme].get(
                    "reu_vs_baseline", 1.0)
            if "renewable_capture" in renewable.get(scheme, {}):
                rows[scheme]["capture"] = renewable[scheme][
                    "renewable_capture"]
                rows[scheme]["capture_vs_baonly"] = renewable[scheme].get(
                    "renewable_capture_vs_baseline", 1.0)
        self.table = rows
        return rows

    def small_large_split(self) -> Dict[str, Dict[str, float]]:
        """HEB-D's EE gain split by peak class (paper: +52.5% / +27.1%)."""
        def gain(runs: Sequence[RunResult], names) -> float:
            subset = [r for r in runs if r.workload in names]
            table = compare_schemes(subset)
            return table["HEB-D"].get("energy_efficiency_vs_baseline", 1.0)

        return {
            "small_peaks": {
                "heb_d_ee_gain": gain(self.efficiency_runs,
                                      SMALL_PEAK_WORKLOADS)},
            "large_peaks": {
                "heb_d_ee_gain": gain(self.efficiency_runs,
                                      LARGE_PEAK_WORKLOADS)},
        }


def run_fig12(duration_h: float = 4.0,
              seed: int = 1,
              workloads: Optional[Sequence[str]] = None,
              schemes: Optional[Sequence[str]] = None,
              downtime_budget_w: float = 248.0,
              renewable_workloads: Optional[Sequence[str]] = None,
              ) -> Fig12Results:
    """Run all four panels.

    Args:
        duration_h: Hours per run ("a workload can be executed
            iteratively", Section 6 — longer is closer to the paper).
        seed: Workload RNG seed.
        workloads: Subset of Table 1 names (default: all eight).
        schemes: Subset of Table 2 names (default: all six).
        downtime_budget_w: Lowered budget for panel (b) ("we intentionally
            lower the utility power budget to trigger server downtime").
        renewable_workloads: Workloads for the REU panel (default: one
            small- and one large-peak workload, to bound runtime).
    """
    workloads = list(workloads) if workloads else list(workload_names())
    schemes = list(schemes) if schemes else list(POLICY_NAMES)
    renewable_workloads = (list(renewable_workloads)
                           if renewable_workloads else ["WS", "TS"])

    # All four panels' runs are independent — submit them as a single
    # batch so the active runner parallelizes across panels, not just
    # within one.
    base = ExperimentSetup(duration_h=duration_h, seed=seed)
    stressed = ExperimentSetup(duration_h=duration_h, seed=seed,
                               budget_w=downtime_budget_w)
    requests = (
        [RunRequest(scheme, workload, setup=base)
         for scheme in schemes for workload in workloads]
        + [RunRequest(scheme, workload, setup=stressed)
           for scheme in schemes for workload in workloads]
        + [RunRequest(scheme, workload, setup=base, renewable=True)
           for scheme in schemes for workload in renewable_workloads]
    )
    results = get_runner().map(requests)

    grid = len(schemes) * len(workloads)
    efficiency_runs = results[:grid]
    downtime_runs = results[grid:2 * grid]
    renewable_runs = results[2 * grid:]
    return Fig12Results(efficiency_runs=efficiency_runs,
                        downtime_runs=downtime_runs,
                        renewable_runs=renewable_runs)


def format_fig12(results: Fig12Results) -> str:
    rows = results.scheme_rows()
    lines = ["Figure 12 — scheme comparison (means across workloads)",
             f"{'scheme':>8s} {'EE':>7s} {'EE/Ba':>7s} {'down(s)':>9s} "
             f"{'down/Ba':>8s} {'life(y)':>8s} {'life/Ba':>8s} "
             f"{'REU':>6s} {'REU/Ba':>7s} {'capt':>6s} {'capt/Ba':>8s}"]

    def cell(value, spec, width):
        return f"{'-' if value is None else format(value, spec):>{width}}"

    for scheme in POLICY_NAMES:
        if scheme not in rows:
            continue
        row = rows[scheme]
        lines.append(
            f"{scheme:>8s} {row['energy_efficiency']:>7.3f} "
            f"{row['ee_vs_baonly']:>7.3f} {row['downtime_s']:>9.0f} "
            f"{row['downtime_vs_baonly']:>8.3f} "
            f"{row['lifetime_years']:>8.2f} "
            f"{row['lifetime_vs_baonly']:>8.2f} "
            f"{cell(row.get('reu'), '.3f', 6)} "
            f"{cell(row.get('reu_vs_baonly'), '.3f', 7)} "
            f"{cell(row.get('capture'), '.3f', 6)} "
            f"{cell(row.get('capture_vs_baonly'), '.3f', 8)}")
    split = results.small_large_split()
    lines.append("HEB-D EE gain by peak class: "
                 f"small={split['small_peaks']['heb_d_ee_gain']:.3f}x, "
                 f"large={split['large_peaks']['heb_d_ee_gain']:.3f}x")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig12(run_fig12()))


if __name__ == "__main__":  # pragma: no cover
    main()
