"""Figure 13: the impact of the SC:battery capacity ratio.

The paper holds the *physical hardware* fixed and carves different usable
SC:battery ratios out of it with DoD thresholds ("we adjust the
Depth-of-Discharge (DoD) of energy buffers to generate different capacity
ratios").  We do the same: a 250 Wh installation (75 Wh SC + 175 Wh
battery) always provides 150 Wh usable, split m:n by per-pool DoD caps.
Because the physical battery is identical at every point, the lifetime
differences reflect *usage* alone — which is why the paper finds lifetime
the most ratio-sensitive metric.

All four metrics are normalized to the default 3:7 point, using HEB-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..runner import ExperimentSetup, RunRequest, get_runner

RATIOS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)

# Fixed hardware: oversized pools the DoD thresholds carve 150 Wh out of.
_HARDWARE_TOTAL_WH = 250.0
_HARDWARE_SC_FRACTION = 0.3  # 75 Wh SC + 175 Wh battery installed
_USABLE_TOTAL_WH = 150.0


@dataclass(frozen=True)
class RatioPoint:
    """Mean metrics at one usable SC share."""

    sc_fraction: float
    energy_efficiency: float
    downtime_s: float
    lifetime_years: float
    reu: float


def _mean(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else 0.0


def _ratio_requests(ratio: float, workload: str, duration_h: float,
                    seed: int, downtime_budget_w: float,
                    scheme: str = "HEB-D") -> List[RunRequest]:
    """The three runs (EE/lifetime, downtime, REU) at one sweep point.

    The physical hardware is identical at every ratio; per-pool DoD caps
    carve the usable m:n split out of it, while the policy's pilot
    profile sees only the *usable* capacities (the ``policy_*`` view).
    """
    sc_usable_wh = ratio * _USABLE_TOTAL_WH
    battery_usable_wh = (1.0 - ratio) * _USABLE_TOTAL_WH
    sc_dod = sc_usable_wh / (_HARDWARE_TOTAL_WH * _HARDWARE_SC_FRACTION)
    battery_dod = battery_usable_wh / (
        _HARDWARE_TOTAL_WH * (1.0 - _HARDWARE_SC_FRACTION))
    base = ExperimentSetup(duration_h=duration_h, seed=seed,
                           sc_fraction=_HARDWARE_SC_FRACTION,
                           total_energy_wh=_HARDWARE_TOTAL_WH,
                           battery_dod=battery_dod, sc_dod=sc_dod)
    stressed = ExperimentSetup(duration_h=duration_h, seed=seed,
                               sc_fraction=_HARDWARE_SC_FRACTION,
                               total_energy_wh=_HARDWARE_TOTAL_WH,
                               battery_dod=battery_dod, sc_dod=sc_dod,
                               budget_w=downtime_budget_w)
    view = {"policy_sc_fraction": ratio,
            "policy_total_wh": _USABLE_TOTAL_WH}
    return [
        RunRequest(scheme, workload, setup=base, **view),
        RunRequest(scheme, workload, setup=stressed, **view),
        RunRequest(scheme, workload, setup=base, renewable=True, **view),
    ]


def run_fig13(duration_h: float = 3.0, seed: int = 1,
              workloads: Optional[Sequence[str]] = None,
              ratios: Sequence[float] = RATIOS,
              downtime_budget_w: float = 235.0,
              ) -> Dict[float, RatioPoint]:
    """Sweep the usable SC share with HEB-D on fixed hardware."""
    workloads = list(workloads) if workloads else ["DA", "TS"]

    requests: List[RunRequest] = []
    for ratio in ratios:
        for workload in workloads:
            requests.extend(_ratio_requests(
                ratio, workload, duration_h, seed, downtime_budget_w))
    results = get_runner().map(requests)

    points: Dict[float, RatioPoint] = {}
    cursor = 0
    for ratio in ratios:
        ee_values, down_values, life_values, reu_values = [], [], [], []
        for _ in workloads:
            ee_run, down_run, reu_run = results[cursor:cursor + 3]
            cursor += 3
            ee_values.append(ee_run.metrics.energy_efficiency)
            life_values.append(ee_run.metrics.battery_lifetime_years)
            down_values.append(down_run.metrics.server_downtime_s)
            reu_values.append(reu_run.metrics.reu)
        points[ratio] = RatioPoint(
            sc_fraction=ratio,
            energy_efficiency=_mean(ee_values),
            downtime_s=_mean(down_values),
            lifetime_years=_mean(life_values),
            reu=_mean(reu_values),
        )
    return points


def normalize_to_default(points: Dict[float, RatioPoint],
                         default: float = 0.3) -> Dict[float, Dict[str, float]]:
    """Normalize every metric to the 3:7 point, as Figure 13 does."""
    base = points[default]
    normalized: Dict[float, Dict[str, float]] = {}
    for ratio, point in points.items():
        normalized[ratio] = {
            "energy_efficiency": point.energy_efficiency
            / max(base.energy_efficiency, 1e-9),
            "downtime": point.downtime_s / max(base.downtime_s, 1e-9)
            if base.downtime_s > 0 else 1.0,
            "lifetime": point.lifetime_years
            / max(base.lifetime_years, 1e-9),
            "reu": point.reu / max(base.reu, 1e-9),
        }
    return normalized


def format_fig13(points: Dict[float, RatioPoint]) -> str:
    normalized = normalize_to_default(points)
    lines = ["Figure 13 — SC:battery usable-capacity ratio sweep "
             "(fixed hardware, normalized to 3:7)",
             f"{'ratio':>7s} {'EE':>7s} {'downtime':>9s} "
             f"{'lifetime':>9s} {'REU':>7s}"]
    for ratio in sorted(points):
        row = normalized[ratio]
        label = f"{int(ratio * 10)}:{int(10 - ratio * 10)}"
        lines.append(f"{label:>7s} {row['energy_efficiency']:>7.3f} "
                     f"{row['downtime']:>9.3f} {row['lifetime']:>9.3f} "
                     f"{row['reu']:>7.3f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig13(run_fig13()))


if __name__ == "__main__":  # pragma: no cover
    main()
