"""Figures 7 & 8: energy-storage architecture and deployment comparison.

Section 4 argues for the HEB topology qualitatively; this experiment makes
the comparison quantitative:

* **Figure 7 axis** — per-architecture steady-state overhead and buffered
  delivery efficiency: the centralized online UPS double-converts the
  whole load all the time; distributed per-server batteries deliver
  efficiently but cannot pool energy; HEB pools and delivers efficiently.
* **Figure 8 axis** — HEB cluster-level (one hControl, DC/AC conversion
  on the buffer path) versus rack-level (DC direct, no sharing across
  racks): we run the same workload through the simulator with each
  deployment's delivery efficiency and compare end-to-end.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

from ..config import prototype_buffer, prototype_cluster
from ..core import make_policy
from ..power.topology import (
    StorageTopology,
    centralized_topology,
    distributed_topology,
    heb_topology,
)
from ..sim import HybridBuffers, Simulation
from ..units import hours, joules_to_wh
from ..workloads import get_workload


@dataclass(frozen=True)
class ArchitectureRow:
    """One architecture's Figure 7 summary."""

    name: str
    delivery_efficiency: float
    steady_overhead_w: float
    shares_energy: bool
    per_server_control: bool
    supports_heterogeneous: bool


def run_fig07(steady_load_w: float = 260.0) -> Dict[str, ArchitectureRow]:
    """Compare the three Figure 7 architectures on static properties."""
    rows: Dict[str, ArchitectureRow] = {}
    for topology in (centralized_topology(), distributed_topology(),
                     heb_topology(rack_level=True)):
        rows[topology.kind.value] = ArchitectureRow(
            name=topology.name,
            delivery_efficiency=topology.delivery_efficiency,
            steady_overhead_w=topology.steady_state_overhead(steady_load_w),
            shares_energy=topology.shares_energy,
            per_server_control=topology.per_server_control,
            supports_heterogeneous=topology.supports_heterogeneous,
        )
    return rows


@dataclass(frozen=True)
class DeploymentRow:
    """One HEB deployment's simulated end-to-end outcome (Figure 8)."""

    name: str
    delivery_efficiency: float
    energy_efficiency: float
    downtime_s: float
    buffer_energy_out_wh: float


def run_fig08(duration_h: float = 4.0, seed: int = 1,
              workload: str = "DA",
              budget_w: float = 248.0) -> Dict[str, DeploymentRow]:
    """Simulate HEB-D under cluster-level vs rack-level deployment.

    The deployments differ in the buffer->server conversion chain
    (Figure 8b pays a DC/AC inverter plus the server PSU; Figure 8c
    delivers DC directly), which the engine models as the cluster's
    converter efficiency.
    """
    hybrid = prototype_buffer()
    trace = get_workload(workload, duration_s=hours(duration_h), seed=seed)
    deployments = {
        "cluster-level": heb_topology(rack_level=False),
        "rack-level": heb_topology(rack_level=True),
    }
    rows: Dict[str, DeploymentRow] = {}
    for name, topology in deployments.items():
        cluster = dataclasses.replace(
            prototype_cluster(),
            utility_budget_w=budget_w,
            converter_efficiency=topology.delivery_efficiency)
        policy = make_policy("HEB-D", hybrid=hybrid)
        buffers = HybridBuffers(hybrid)
        result = Simulation(trace, policy, buffers,
                            cluster_config=cluster).run()
        rows[name] = DeploymentRow(
            name=name,
            delivery_efficiency=topology.delivery_efficiency,
            energy_efficiency=result.metrics.energy_efficiency,
            downtime_s=result.metrics.server_downtime_s,
            buffer_energy_out_wh=joules_to_wh(
                result.metrics.buffer_energy_out_j),
        )
    return rows


def format_fig07(architectures: Dict[str, ArchitectureRow],
                 deployments: Dict[str, DeploymentRow]) -> str:
    lines = ["Figure 7 — storage architecture comparison",
             f"{'architecture':>13s} {'delivery':>9s} {'idle loss(W)':>13s} "
             f"{'shares':>7s} {'per-srv':>8s} {'hybrid':>7s}"]
    for key, row in architectures.items():
        lines.append(
            f"{key:>13s} {row.delivery_efficiency:>9.3f} "
            f"{row.steady_overhead_w:>13.1f} "
            f"{str(row.shares_energy):>7s} "
            f"{str(row.per_server_control):>8s} "
            f"{str(row.supports_heterogeneous):>7s}")
    lines.append("Figure 8 — HEB deployment levels (simulated, HEB-D)")
    lines.append(f"{'deployment':>14s} {'delivery':>9s} {'EE':>7s} "
                 f"{'downtime':>9s} {'buffered(Wh)':>13s}")
    for name, row in deployments.items():
        lines.append(f"{name:>14s} {row.delivery_efficiency:>9.3f} "
                     f"{row.energy_efficiency:>7.3f} "
                     f"{row.downtime_s:>8.0f}s "
                     f"{row.buffer_energy_out_wh:>13.1f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig07(run_fig07(), run_fig08()))


if __name__ == "__main__":  # pragma: no cover
    main()
