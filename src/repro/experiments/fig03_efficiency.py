"""Figure 3: round-trip efficiency of SCs vs batteries at 1/2/4 servers.

Reruns the Section 3.1 test-bed protocol against the device models: full
charge -> constant-power discharge (one server = 70 W) -> recharge, plus
the battery recovery experiment (rest-interleaved discharge) and the
off/on energy waste that eats into the recovered energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import ServerConfig, prototype_battery, prototype_buffer, \
    prototype_supercap
from ..storage import (
    LeadAcidBattery,
    Supercapacitor,
    recovery_experiment,
    round_trip_efficiency,
)


@dataclass(frozen=True)
class EfficiencyRow:
    """One load level of the Figure 3 comparison."""

    servers: int
    power_w: float
    battery_efficiency: float
    sc_efficiency: float
    battery_recovery_gain: float
    onoff_waste_fraction: float


def _prototype_devices():
    """Pool-sized devices as wired in the prototype (3:7 at 150 Wh)."""
    hybrid = prototype_buffer()
    sc_config = prototype_supercap().scaled_to_energy(hybrid.sc_energy_j)
    battery_config = prototype_battery().scaled_to_energy(
        hybrid.battery_energy_j)
    return sc_config, battery_config


def run_fig03(server_power_w: float = 70.0) -> Dict[int, EfficiencyRow]:
    """Measure both technologies at one, two and four servers."""
    sc_config, battery_config = _prototype_devices()
    server = ServerConfig()
    rows: Dict[int, EfficiencyRow] = {}
    for servers in (1, 2, 4):
        power = servers * server_power_w
        battery_eff = round_trip_efficiency(
            LeadAcidBattery(battery_config), power, 30.0)
        sc_eff = round_trip_efficiency(
            Supercapacitor(sc_config), power, 300.0)
        recovery = recovery_experiment(
            lambda: LeadAcidBattery(battery_config),
            power_w=power, burst_s=300.0, rest_s=900.0, cycles=10,
            restart_energy_j=servers * server.restart_energy_j)
        waste_fraction = (recovery.onoff_overhead_j
                          / recovery.recovered_energy_j
                          if recovery.recovered_energy_j > 0 else 0.0)
        rows[servers] = EfficiencyRow(
            servers=servers,
            power_w=power,
            battery_efficiency=battery_eff,
            sc_efficiency=sc_eff,
            battery_recovery_gain=recovery.recovery_gain,
            onoff_waste_fraction=waste_fraction,
        )
    return rows


def format_fig03(rows: Dict[int, EfficiencyRow]) -> str:
    lines = ["Figure 3 — round-trip efficiency (battery vs SC)",
             f"{'servers':>8s} {'power(W)':>9s} {'battery':>9s} "
             f"{'SC':>7s} {'recovery+':>10s} {'on/off waste':>13s}"]
    for servers in sorted(rows):
        row = rows[servers]
        lines.append(
            f"{row.servers:>8d} {row.power_w:>9.0f} "
            f"{row.battery_efficiency:>9.3f} {row.sc_efficiency:>7.3f} "
            f"{row.battery_recovery_gain:>10.1%} "
            f"{row.onoff_waste_fraction:>13.1%}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig03(run_fig03()))


if __name__ == "__main__":  # pragma: no cover
    main()
