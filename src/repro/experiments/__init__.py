"""Experiment runners: one module per paper table/figure.

Each module exposes a ``run_*`` function returning structured results and
a ``format_*`` helper that prints the same rows/series the paper reports.
The benchmark harness under ``benchmarks/`` drives these; the modules are
also directly importable for interactive exploration.
"""

from .common import (
    ExperimentSetup,
    run_scheme,
    run_all_schemes,
    run_renewable,
    format_table,
)
from .fig01_provisioning import run_fig01, format_fig01
from .fig03_efficiency import run_fig03, format_fig03
from .fig04_cost import run_fig04, format_fig04
from .fig05_discharge import run_fig05, format_fig05
from .fig06_assignment import run_fig06, format_fig06
from .fig07_architecture import run_fig07, run_fig08, format_fig07
from .fig12_schemes import run_fig12, format_fig12
from .fig13_ratio import run_fig13, format_fig13
from .fig14_capacity import run_fig14, format_fig14
from .fig15_tco import run_fig15, format_fig15
from .loadtest import (
    LoadTestReport,
    format_loadtest,
    run_loadtest,
)
from .resilience import (
    fault_schedule_for,
    format_resilience,
    run_resilience,
)

__all__ = [
    "ExperimentSetup",
    "run_scheme",
    "run_all_schemes",
    "run_renewable",
    "format_table",
    "run_fig01", "format_fig01",
    "run_fig03", "format_fig03",
    "run_fig04", "format_fig04",
    "run_fig05", "format_fig05",
    "run_fig06", "format_fig06",
    "run_fig07", "run_fig08", "format_fig07",
    "run_fig12", "format_fig12",
    "run_fig13", "format_fig13",
    "run_fig14", "format_fig14",
    "run_fig15", "format_fig15",
    "run_resilience", "format_resilience", "fault_schedule_for",
    "LoadTestReport", "run_loadtest", "format_loadtest",
]
