"""Figure 5: discharge voltage curves of batteries vs SCs at 1/2/4 servers.

The paper's observation: "the SC discharging voltage shows linearly
declining trend irrespective of power demands.  However, batteries exhibit
a sharp voltage drop in light of large power demands."  We quantify both —
the initial voltage drop (battery sag) and the linearity of the decline
(R^2 of a straight-line fit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..config import prototype_battery, prototype_buffer, prototype_supercap
from ..storage import (
    CharacterizationResult,
    LeadAcidBattery,
    Supercapacitor,
    discharge_voltage_curve,
)


@dataclass(frozen=True)
class DischargeCurve:
    """Summary of one constant-power discharge trace."""

    device: str
    servers: int
    power_w: float
    runtime_s: float
    initial_drop_v: float
    linearity_r2: float
    curve: CharacterizationResult


def _linearity(voltages: List[float]) -> float:
    """R^2 of a straight-line fit to the voltage trajectory."""
    if len(voltages) < 3:
        return 1.0
    y = np.asarray(voltages)
    x = np.arange(len(y), dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    residuals = y - (slope * x + intercept)
    total = float(((y - y.mean()) ** 2).sum())
    if total <= 0:
        return 1.0
    return 1.0 - float((residuals ** 2).sum()) / total


def run_fig05(server_power_w: float = 70.0) -> Dict[str, DischargeCurve]:
    """Record curves for both devices at 1, 2 and 4 servers."""
    hybrid = prototype_buffer()
    sc_config = prototype_supercap().scaled_to_energy(hybrid.sc_energy_j)
    battery_config = prototype_battery().scaled_to_energy(
        hybrid.battery_energy_j)
    curves: Dict[str, DischargeCurve] = {}
    for servers in (1, 2, 4):
        power = servers * server_power_w
        battery = LeadAcidBattery(battery_config)
        open_circuit = battery.open_circuit_voltage()
        curve = discharge_voltage_curve(battery, power)
        curves[f"battery/{servers}"] = DischargeCurve(
            device="battery", servers=servers, power_w=power,
            runtime_s=curve.runtime_s,
            initial_drop_v=open_circuit - curve.voltages_v[0],
            linearity_r2=_linearity(curve.voltages_v),
            curve=curve)
        supercap = Supercapacitor(sc_config)
        sc_open = supercap.voltage
        curve = discharge_voltage_curve(supercap, power)
        curves[f"sc/{servers}"] = DischargeCurve(
            device="sc", servers=servers, power_w=power,
            runtime_s=curve.runtime_s,
            initial_drop_v=sc_open - curve.voltages_v[0],
            linearity_r2=_linearity(curve.voltages_v),
            curve=curve)
    return curves


def format_fig05(curves: Dict[str, DischargeCurve]) -> str:
    lines = ["Figure 5 — discharge voltage behaviour",
             f"{'device':>12s} {'servers':>8s} {'runtime(s)':>11s} "
             f"{'initial drop(V)':>16s} {'linearity R2':>13s}"]
    for key in sorted(curves):
        row = curves[key]
        lines.append(
            f"{row.device:>12s} {row.servers:>8d} {row.runtime_s:>11.0f} "
            f"{row.initial_drop_v:>16.2f} {row.linearity_r2:>13.4f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig05(run_fig05()))


if __name__ == "__main__":  # pragma: no cover
    main()
