"""Shared experiment scaffolding: standard setups and table formatting.

Every run routes through the active :mod:`repro.runner` runner, so a
caller (or the CLI) that installs a parallel, cache-backed runner via
``using_runner`` speeds up every figure below without any signature
changes here.  The default runner is serial and cacheless — identical
behavior to calling the simulator directly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..config import ControllerConfig
from ..runner import ExperimentSetup, RunRequest, get_runner
from ..sim import RunResult
from ..workloads import workload_names
from ..workloads.solar import SolarConfig

__all__ = [
    "ExperimentSetup",
    "run_scheme",
    "run_all_schemes",
    "run_renewable",
    "format_table",
]


def run_scheme(scheme: str, workload: str,
               setup: ExperimentSetup = ExperimentSetup(),
               controller: Optional[ControllerConfig] = None) -> RunResult:
    """One (scheme, workload) run under a utility budget."""
    return get_runner().run(RunRequest(scheme, workload, setup=setup,
                                       controller=controller))


def run_all_schemes(workloads: Optional[Sequence[str]] = None,
                    schemes: Optional[Sequence[str]] = None,
                    setup: ExperimentSetup = ExperimentSetup(),
                    ) -> List[RunResult]:
    """The Figure 12 grid: every scheme against every workload.

    The whole grid is submitted as one batch, so the active runner can
    execute it with full parallelism.
    """
    from ..core import POLICY_NAMES

    workloads = list(workloads) if workloads else list(workload_names())
    schemes = list(schemes) if schemes else list(POLICY_NAMES)
    requests = [RunRequest(scheme, workload, setup=setup)
                for scheme in schemes for workload in workloads]
    return get_runner().map(requests)


def run_renewable(scheme: str, workload: str,
                  setup: ExperimentSetup = ExperimentSetup(),
                  solar: Optional[SolarConfig] = None,
                  start_hour: float = 8.0) -> RunResult:
    """One (scheme, workload) run powered by solar instead of utility.

    The solar array defaults to 600 W rated — comfortably above the
    cluster's demand so deep valleys (big surpluses) occur, which is the
    regime where battery charge-current limits throttle REU (Section 2.2).
    """
    return get_runner().run(RunRequest(scheme, workload, setup=setup,
                                       renewable=True, solar=solar,
                                       start_hour=start_hour))


def format_table(rows: Mapping[str, Mapping[str, float]],
                 columns: Sequence[str],
                 title: str = "",
                 precision: int = 3) -> str:
    """Render a dict-of-rows as the fixed-width tables the harness prints."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'':>10s} " + " ".join(f"{c:>24s}" for c in columns)
    lines.append(header)
    for name, row in rows.items():
        cells = []
        for column in columns:
            value = row.get(column)
            if value is None:
                cells.append(f"{'-':>24s}")
            elif isinstance(value, float):
                cells.append(f"{value:>24.{precision}f}")
            else:
                cells.append(f"{value!s:>24s}")
        lines.append(f"{name:>10s} " + " ".join(cells))
    return "\n".join(lines)
