"""Shared experiment scaffolding: standard setups and table formatting."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..config import (
    ClusterConfig,
    ControllerConfig,
    HybridBufferConfig,
    prototype_buffer,
    prototype_cluster,
)
from ..core import make_policy
from ..sim import HybridBuffers, RunResult, Simulation
from ..units import hours
from ..workloads import generate_solar_trace, get_workload, workload_names
from ..workloads.solar import SolarConfig


@dataclass(frozen=True)
class ExperimentSetup:
    """A standard prototype-style experiment configuration.

    Attributes:
        duration_h: Simulated hours per (scheme, workload) run.
        budget_w: Utility budget; None keeps the prototype's 260 W.
        seed: Workload RNG seed.
        sc_fraction: SC share of installed buffer capacity.
        total_energy_wh: Installed buffer capacity.
        battery_dod / sc_dod: Optional depth-of-discharge overrides
            (the Section 7.5 capacity knob).
    """

    duration_h: float = 4.0
    budget_w: Optional[float] = None
    seed: int = 1
    sc_fraction: float = 0.3
    total_energy_wh: float = 150.0
    battery_dod: Optional[float] = None
    sc_dod: Optional[float] = None

    def cluster(self) -> ClusterConfig:
        config = prototype_cluster()
        if self.budget_w is not None:
            config = dataclasses.replace(config,
                                         utility_budget_w=self.budget_w)
        return config

    def hybrid(self) -> HybridBufferConfig:
        return prototype_buffer(sc_fraction=self.sc_fraction,
                                total_energy_wh=self.total_energy_wh)


def run_scheme(scheme: str, workload: str,
               setup: ExperimentSetup = ExperimentSetup(),
               controller: Optional[ControllerConfig] = None) -> RunResult:
    """One (scheme, workload) run under a utility budget."""
    cluster = setup.cluster()
    hybrid = setup.hybrid()
    trace = get_workload(workload, duration_s=hours(setup.duration_h),
                         num_servers=cluster.num_servers,
                         server=cluster.server, seed=setup.seed)
    policy = make_policy(scheme, hybrid=hybrid, controller=controller)
    buffers = HybridBuffers(hybrid,
                            include_sc=scheme.lower() != "baonly",
                            battery_dod=setup.battery_dod,
                            sc_dod=setup.sc_dod)
    simulation = Simulation(trace, policy, buffers, cluster_config=cluster,
                            controller_config=controller)
    return simulation.run()


def run_all_schemes(workloads: Optional[Sequence[str]] = None,
                    schemes: Optional[Sequence[str]] = None,
                    setup: ExperimentSetup = ExperimentSetup(),
                    ) -> List[RunResult]:
    """The Figure 12 grid: every scheme against every workload."""
    from ..core import POLICY_NAMES

    workloads = list(workloads) if workloads else list(workload_names())
    schemes = list(schemes) if schemes else list(POLICY_NAMES)
    results = []
    for scheme in schemes:
        for workload in workloads:
            results.append(run_scheme(scheme, workload, setup))
    return results


def run_renewable(scheme: str, workload: str,
                  setup: ExperimentSetup = ExperimentSetup(),
                  solar: Optional[SolarConfig] = None,
                  start_hour: float = 8.0) -> RunResult:
    """One (scheme, workload) run powered by solar instead of utility.

    The solar array defaults to 600 W rated — comfortably above the
    cluster's demand so deep valleys (big surpluses) occur, which is the
    regime where battery charge-current limits throttle REU (Section 2.2).
    """
    cluster = setup.cluster()
    hybrid = setup.hybrid()
    duration_s = hours(setup.duration_h)
    trace = get_workload(workload, duration_s=duration_s,
                         num_servers=cluster.num_servers,
                         server=cluster.server, seed=setup.seed)
    solar = solar or SolarConfig(rated_power_w=520.0,
                                 cloud_attenuation=0.15,
                                 mean_cloud_s=700.0, mean_clear_s=900.0)
    supply = generate_solar_trace(duration_s, config=solar,
                                  seed=setup.seed,
                                  start_time_s=hours(start_hour))
    policy = make_policy(scheme, hybrid=hybrid)
    buffers = HybridBuffers(hybrid,
                            include_sc=scheme.lower() != "baonly")
    simulation = Simulation(trace, policy, buffers, cluster_config=cluster,
                            supply=supply, renewable=True)
    return simulation.run()


def format_table(rows: Mapping[str, Mapping[str, float]],
                 columns: Sequence[str],
                 title: str = "",
                 precision: int = 3) -> str:
    """Render a dict-of-rows as the fixed-width tables the harness prints."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'':>10s} " + " ".join(f"{c:>24s}" for c in columns)
    lines.append(header)
    for name, row in rows.items():
        cells = []
        for column in columns:
            value = row.get(column)
            if value is None:
                cells.append(f"{'-':>24s}")
            elif isinstance(value, float):
                cells.append(f"{value:>24.{precision}f}")
            else:
                cells.append(f"{value!s:>24s}")
        lines.append(f"{name:>10s} " + " ".join(cells))
    return "\n".join(lines)
