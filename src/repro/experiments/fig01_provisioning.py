"""Figure 1(a): provisioning levels P1-P4 against a cluster trace.

Regenerates the MPPU / mismatch analysis that motivates under-provisioned
infrastructure: full provisioning (P1) wastes capital on a budget touched
almost never; 40% provisioning (P4) is highly utilized but mismatches
constantly.
"""

from __future__ import annotations

from typing import Dict, List

from ..power.budget import ProvisioningLevel, provisioning_analysis
from ..units import days
from ..workloads import generate_google_like_trace


def run_fig01(duration_days: float = 7.0, seed: int = 1,
              nameplate_w: float = 1000.0) -> List[ProvisioningLevel]:
    """Analyze P1 (100%) through P4 (40%) on a synthetic cluster trace."""
    trace = generate_google_like_trace(days(duration_days),
                                       nameplate_w=nameplate_w, seed=seed)
    return provisioning_analysis(trace, fractions=(1.0, 0.8, 0.6, 0.4))


def format_fig01(levels: List[ProvisioningLevel]) -> str:
    """Paper-style rows: one per provisioning level."""
    lines = ["Figure 1(a) — provisioning levels vs MPPU",
             f"{'level':>6s} {'budget%':>8s} {'MPPU':>8s} "
             f"{'capped-energy':>14s} {'events':>7s} {'CAPEX($, low)':>14s}"]
    for level in levels:
        lines.append(
            f"{level.name:>6s} {level.budget_fraction:>7.0%} "
            f"{level.mppu:>8.4f} {level.capped_energy_fraction:>14.4f} "
            f"{level.mismatch_events:>7d} {level.capital_cost_low:>14.0f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig01(run_fig01()))


if __name__ == "__main__":  # pragma: no cover
    main()
