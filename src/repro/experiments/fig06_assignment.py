"""Figure 6: cluster runtime vs the number of servers assigned to SCs.

The Section 3.2 experiment: hold per-server demand constant, sweep how
many of the six servers draw from the SC pool (the rest draw from the
battery pool, with immediate fail-over when either empties), and record
how long the whole cluster stays powered.  The paper's finding — an
interior optimum; leaning fully on SCs cuts runtime ~25% — drives the
entire PAT design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import prototype_battery, prototype_buffer, prototype_supercap
from ..core.profiling import runtime_for_ratio
from ..storage import LeadAcidBattery, Supercapacitor


@dataclass(frozen=True)
class AssignmentPoint:
    """Runtime for one server split."""

    servers_on_sc: int
    r_lambda: float
    runtime_s: float


def run_fig06(per_server_power_w: float = 55.0,
              num_servers: int = 6,
              sc_fraction: float = 0.3,
              dt: float = 5.0) -> Dict[int, AssignmentPoint]:
    """Sweep servers-on-SC from 0 to num_servers at constant demand."""
    hybrid = prototype_buffer(sc_fraction=sc_fraction)
    sc_config = prototype_supercap().scaled_to_energy(hybrid.sc_energy_j)
    battery_config = prototype_battery().scaled_to_energy(
        hybrid.battery_energy_j)
    deficit = per_server_power_w * num_servers
    points: Dict[int, AssignmentPoint] = {}
    for on_sc in range(num_servers + 1):
        ratio = on_sc / num_servers
        runtime = runtime_for_ratio(
            lambda: Supercapacitor(sc_config),
            lambda: LeadAcidBattery(battery_config),
            deficit_w=deficit, r_lambda=ratio, dt=dt)
        points[on_sc] = AssignmentPoint(servers_on_sc=on_sc,
                                        r_lambda=ratio, runtime_s=runtime)
    return points


def optimal_assignment(points: Dict[int, AssignmentPoint]) -> AssignmentPoint:
    """The split with the longest runtime."""
    return max(points.values(), key=lambda p: p.runtime_s)


def format_fig06(points: Dict[int, AssignmentPoint]) -> str:
    best = optimal_assignment(points)
    lines = ["Figure 6 — cluster runtime vs servers assigned to SCs",
             f"{'on SC':>6s} {'runtime(s)':>11s} {'vs best':>8s}"]
    for on_sc in sorted(points):
        point = points[on_sc]
        marker = " <- optimum" if on_sc == best.servers_on_sc else ""
        lines.append(f"{on_sc:>6d} {point.runtime_s:>11.0f} "
                     f"{point.runtime_s / best.runtime_s:>8.2f}{marker}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig06(run_fig06()))


if __name__ == "__main__":  # pragma: no cover
    main()
