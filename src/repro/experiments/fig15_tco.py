"""Figure 15: the TCO analysis — cost breakdown, ROI, peak-shaving gain."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import TCOConfig, paper_tco
from ..tco import (
    CostBreakdown,
    ROIPoint,
    compare_peak_shaving,
    prototype_cost_breakdown,
    roi_sweep,
)


@dataclass
class Fig15Results:
    """All three panels of Figure 15."""

    breakdown: CostBreakdown
    server_cost: float
    roi_points: List[ROIPoint]
    peak_shaving: Dict[str, Dict[str, float]]


def run_fig15(config: TCOConfig | None = None) -> Fig15Results:
    """Compute all three panels with the paper's constants."""
    config = config or paper_tco()
    breakdown, server_cost = prototype_cost_breakdown()
    return Fig15Results(
        breakdown=breakdown,
        server_cost=server_cost,
        roi_points=roi_sweep(config=config),
        peak_shaving=compare_peak_shaving(),
    )


def format_fig15(results: Fig15Results) -> str:
    lines = ["Figure 15(a) — prototype cost breakdown"]
    for component, fraction in results.breakdown.fractions().items():
        lines.append(f"  {component:>22s}: {fraction:>6.1%}")
    lines.append(f"  node total ${results.breakdown.total:.0f} "
                 f"({results.breakdown.total / results.server_cost:.1%} of "
                 f"the ${results.server_cost:.0f} server cost)")

    lines.append("Figure 15(b) — ROI sweep (positive cells / total)")
    positive = sum(1 for p in results.roi_points if p.worthwhile)
    lines.append(f"  {positive}/{len(results.roi_points)} operating points "
                 "have positive ROI")
    best = max(results.roi_points, key=lambda p: p.roi)
    worst = min(results.roi_points, key=lambda p: p.roi)
    lines.append(f"  best  ROI {best.roi:+.2f} at C_cap="
                 f"{best.capex_per_watt:.0f} $/W, "
                 f"{best.peak_duration_h:.2f} h peaks")
    lines.append(f"  worst ROI {worst.roi:+.2f} at C_cap="
                 f"{worst.capex_per_watt:.0f} $/W, "
                 f"{worst.peak_duration_h:.2f} h peaks")

    lines.append("Figure 15(c) — 8-year peak-shaving comparison")
    lines.append(f"  {'scheme':>8s} {'break-even(y)':>14s} "
                 f"{'8y net($)':>11s} {'vs BaOnly':>10s}")
    for scheme, row in results.peak_shaving.items():
        ratio = row.get("net_vs_baonly", 1.0)
        lines.append(f"  {scheme:>8s} {row['break_even_year']:>14.2f} "
                     f"{row['final_net']:>11.0f} {ratio:>10.2f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig15(run_fig15()))


if __name__ == "__main__":  # pragma: no cover
    main()
