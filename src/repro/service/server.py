"""Scenario-as-a-service: the asyncio HTTP/1.1 wire layer.

A deliberately small, dependency-free HTTP server over
``asyncio.start_server`` — request line + headers + ``Content-Length``
bodies in, JSON out, keep-alive connections, chunked transfer encoding
for the progress stream.  All simulation semantics live in
:class:`~repro.service.queue.ScenarioService`; this module only parses
bytes and shapes responses.

Endpoints::

    POST /runs                submit a run spec        -> 202 / 200 / 400 / 429 / 503
    GET  /runs/{key}          poll status + result     -> 200 / 404
    GET  /runs/{key}/stream   chunked JSON-lines progress
    GET  /stats               cache/queue/hit-rate counters

Error responses are structured: ``{"error": {"code": <ReproError
subclass name>, "message": ...}}`` — a malformed spec is a 400 with a
code, never a 500 with a traceback.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from ..errors import (
    ProtocolError,
    QueueFullError,
    ReproError,
    ServiceShutdownError,
    SpecError,
    UnknownRunError,
)
from ..runner import ExperimentRunner
from .protocol import error_payload, request_from_spec
from .queue import RunEntry, ScenarioService

#: Hard limits on what one request may send (DoS hygiene, not tuning).
MAX_REQUEST_LINE_BYTES = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 1_048_576

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpRequest:
    """One parsed request: method, path, headers, body bytes."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str,
                 headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive") != "close"


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[_HttpRequest]:
    """Parse one HTTP/1.1 request; None on a cleanly closed connection.

    Raises:
        ProtocolError: On a malformed request line, oversized headers,
            or a body exceeding :data:`MAX_BODY_BYTES`.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE_BYTES:
        raise ProtocolError("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(f"malformed request line: {line!r:.80}")
    method, path = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        raw = await reader.readline()
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError("request headers too large")
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip().lower()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(
            f"invalid Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"body of {length} bytes exceeds the "
                            f"{MAX_BODY_BYTES}-byte limit")
    if length:
        body = await reader.readexactly(length)
    return _HttpRequest(method, path, headers, body)


def _encode_response(status: int, payload: Dict[str, Any],
                     extra_headers: Tuple[Tuple[str, str], ...] = (),
                     keep_alive: bool = True) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


class ScenarioServer:
    """Binds a :class:`ScenarioService` to a TCP listener.

    Usage::

        service = ScenarioService(runner)
        server = ScenarioServer(service, host="127.0.0.1", port=0)
        await server.start()          # service dispatch loop + listener
        ...
        await server.close()          # graceful: drains accepted runs
    """

    def __init__(self, service: ScenarioService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def close(self, drain: bool = True) -> None:
        """Stop listening, then settle every accepted run (see service)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.shutdown(drain=drain)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ProtocolError as error:
                    writer.write(_encode_response(
                        400, error_payload(error), keep_alive=False))
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                keep_alive = await self._route(request, writer)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: _HttpRequest,
                     writer: asyncio.StreamWriter) -> bool:
        """Dispatch one request; returns whether to keep the connection."""
        method, path = request.method, request.path
        if path == "/runs" and method == "POST":
            writer.write(self._post_runs(request))
            return request.keep_alive
        if path == "/stats" and method == "GET":
            writer.write(_encode_response(200, self.service.stats()))
            return request.keep_alive
        if path.startswith("/runs/") and method == "GET":
            key = path[len("/runs/"):]
            if key.endswith("/stream"):
                return await self._stream(request, key[:-len("/stream")],
                                          writer)
            writer.write(self._poll(key))
            return request.keep_alive
        error: ReproError = ProtocolError(
            f"no route for {method} {path}")
        status = 405 if path in ("/runs", "/stats") else 404
        writer.write(_encode_response(status, error_payload(error),
                                      keep_alive=request.keep_alive))
        return request.keep_alive

    # -- POST /runs -----------------------------------------------------

    def _post_runs(self, request: _HttpRequest) -> bytes:
        try:
            try:
                payload = json.loads(request.body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                raise SpecError(
                    f"request body is not valid JSON: {error}") from error
            run_request = request_from_spec(payload)
        except ReproError as error:
            # SpecError, FaultSpecError, ConfigurationError, ...: the
            # structured 400 contract — never a traceback.
            return _encode_response(400, error_payload(error),
                                    keep_alive=request.keep_alive)
        try:
            entry, created = self.service.submit(run_request)
        except QueueFullError as error:
            retry_after = max(1, round(error.retry_after_s))
            return _encode_response(
                429, error_payload(error),
                extra_headers=(("Retry-After", str(retry_after)),),
                keep_alive=request.keep_alive)
        except ServiceShutdownError as error:
            return _encode_response(503, error_payload(error),
                                    keep_alive=False)
        status = 202 if created else 200
        return _encode_response(status,
                                entry.snapshot(include_result=False),
                                keep_alive=request.keep_alive)

    # -- GET /runs/{key} ------------------------------------------------

    def _poll(self, key: str) -> bytes:
        entry = self.service.get(key)
        if entry is None:
            error = UnknownRunError(
                f"no run with key {key!r}; submit it via POST /runs")
            return _encode_response(404, error_payload(error, key=key))
        return _encode_response(200, entry.snapshot())

    # -- GET /runs/{key}/stream -----------------------------------------

    async def _stream(self, request: _HttpRequest, key: str,
                      writer: asyncio.StreamWriter) -> bool:
        entry = self.service.get(key)
        if entry is None:
            error = UnknownRunError(
                f"no run with key {key!r}; submit it via POST /runs")
            writer.write(_encode_response(404, error_payload(error,
                                                             key=key)))
            return request.keep_alive
        self.service.metrics.streamed += 1
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        last_status: Optional[str] = None
        while True:
            event = self.service.change_event
            if entry.status != last_status:
                last_status = entry.status
                line = json.dumps(entry.snapshot(), sort_keys=True)
                chunk = line.encode("utf-8") + b"\n"
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1")
                             + chunk + b"\r\n")
                await writer.drain()
            if entry.terminal:
                break
            await event.wait()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        # Chunked responses end the exchange; close so simple clients
        # need no chunked keep-alive bookkeeping.
        return False


async def serve(runner: ExperimentRunner, host: str = "127.0.0.1",
                port: int = 8421, max_queue: int = 256,
                max_group: int = 64,
                batch_window_s: float = 0.005) -> None:
    """Run the service until cancelled; drains accepted runs on exit."""
    service = ScenarioService(runner, max_queue=max_queue,
                              max_group=max_group,
                              batch_window_s=batch_window_s)
    server = ScenarioServer(service, host=host, port=port)
    await server.start()
    print(f"repro service listening on http://{server.host}:{server.port}"
          f" (queue={max_queue}, jobs={runner.effective_jobs})")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass  # normal shutdown path (Ctrl-C in the CLI wrapper)
    finally:
        await server.close(drain=True)


__all__ = [
    "MAX_BODY_BYTES",
    "ScenarioServer",
    "serve",
]
