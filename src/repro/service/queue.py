"""The service core: dedup registry + bounded queue + batched dispatch.

This module is HTTP-free — :class:`ScenarioService` is the whole
behaviour of the scenario service against plain Python objects, which is
what the property tests exercise directly; :mod:`repro.service.server`
is a thin wire adapter over it.

Dedup invariant (the "a million identical users cost one simulation"
contract): at any moment there is **at most one** execution per cache
key.  :meth:`submit` is a synchronous method called from the event
loop, so the check-registry/insert-entry sequence can never interleave
with another submission — concurrent identical submissions coalesce
onto the same :class:`RunEntry` and share its result.  Completed
entries answer later submissions from memory; entries evicted from the
bounded registry still answer from the on-disk content-addressed cache.

Backpressure invariant: the queue of accepted-but-not-dispatched runs
is bounded.  A submission that would exceed the bound raises
:class:`~repro.errors.QueueFullError` (HTTP 429) *at submission time*;
once accepted, a run is never dropped — it completes, fails with its
execution error, or faults with
:class:`~repro.errors.ServiceShutdownError` when the service stops
without draining.

Batch grouping: the dispatcher drains bursts of queued runs and hands
them to :meth:`ExperimentRunner.map` in one call, so compatible queued
requests ride one :class:`~repro.sim.batch.BatchSimulation` tick loop
(the runner's ``plan_units`` grouping) exactly as CLI sweeps do.  The
blocking runner call executes on a worker thread; the event loop stays
responsive for submissions and polls while a batch simulates.
"""

from __future__ import annotations

import asyncio
from collections import deque
from time import perf_counter
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import (
    QueueFullError,
    ReproError,
    RunExecutionError,
    ServiceShutdownError,
)
from ..runner import ExperimentRunner, RunRequest, cache_key
from ..sim import RunResult
from ..sim.results import result_to_dict
from .metrics import ServiceMetrics

#: Run lifecycle states, in order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States a run never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED})


class RunEntry:
    """One content-addressed run the service knows about.

    An entry is shared by every submission of the same request: the
    first submission creates it, later ones attach to it.  ``done``
    is an :class:`asyncio.Event` set exactly once, on the transition
    into a terminal state.
    """

    __slots__ = ("key", "request", "status", "result", "error_code",
                 "error_message", "submissions", "done")

    def __init__(self, key: str, request: RunRequest,
                 status: str = QUEUED) -> None:
        self.key = key
        self.request = request
        self.status = status
        self.result: Optional[RunResult] = None
        self.error_code: Optional[str] = None
        self.error_message: Optional[str] = None
        self.submissions = 1
        self.done = asyncio.Event()

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def snapshot(self, include_result: bool = True) -> Dict[str, Any]:
        """JSON-compatible view of the run (poll/stream responses)."""
        view: Dict[str, Any] = {
            "key": self.key,
            "status": self.status,
            "submissions": self.submissions,
        }
        if self.status == FAILED:
            view["error"] = {"code": self.error_code,
                             "message": self.error_message}
        if include_result and self.status == DONE:
            assert self.result is not None
            view["result"] = result_to_dict(self.result)
        return view


#: The blocking execution hook: a request batch in, aligned results out.
#: Defaults to ``runner.map`` (cache + process pool + batch grouping);
#: tests inject counting/gated callables here.
RunBatch = Callable[[Sequence[RunRequest]], List[RunResult]]


class ScenarioService:
    """Deduplicating, backpressured front end over an experiment runner.

    Args:
        runner: Executes cache-missing work (and owns the on-disk
            result cache the submit fast path probes).
        max_queue: Bound on accepted-but-not-dispatched runs; beyond it
            submissions raise :class:`QueueFullError`.
        max_group: Largest burst handed to one ``runner.map`` call (the
            upper bound on one batched group's lane count).
        batch_window_s: How long the dispatcher lingers after finding
            work, letting a burst accumulate so compatible requests
            land in the same batched group.  Zero dispatches eagerly.
        max_done: Completed entries kept in memory for registry hits;
            older ones are evicted (their results remain in the on-disk
            cache).
        run_batch: Override of the blocking execution hook (tests).
    """

    def __init__(self, runner: ExperimentRunner,
                 max_queue: int = 256,
                 max_group: int = 64,
                 batch_window_s: float = 0.005,
                 max_done: int = 4096,
                 run_batch: Optional[RunBatch] = None) -> None:
        self.runner = runner
        self.max_queue = max_queue
        self.max_group = max_group
        self.batch_window_s = batch_window_s
        self.max_done = max_done
        self.metrics = ServiceMetrics()
        self._run_batch: RunBatch = (run_batch if run_batch is not None
                                     else runner.map)
        self._entries: Dict[str, RunEntry] = {}
        self._pending: Deque[RunEntry] = deque()
        self._done_order: Deque[str] = deque()
        self._wake = asyncio.Event()
        self._change = asyncio.Event()
        self._accepting = True
        self._draining = False
        self._dispatcher: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the dispatch loop on the running event loop."""
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop())

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work and settle every accepted run.

        With ``drain=True`` (graceful) queued and in-flight runs all
        execute to completion first.  With ``drain=False`` queued runs
        fault immediately with :class:`ServiceShutdownError`; the run
        currently executing (if any) still completes — a blocking
        simulation on a worker thread cannot be safely interrupted.
        Either way, after this returns every accepted run is terminal.
        """
        self._accepting = False
        if not drain:
            while self._pending:
                entry = self._pending.popleft()
                self._fail(entry, ServiceShutdownError(
                    "service shut down before this run was dispatched"))
            self.metrics.queue_depth = 0
        self._draining = True
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None

    @property
    def accepting(self) -> bool:
        return self._accepting

    # ------------------------------------------------------------------
    # Change notification (poll/stream waiters)
    # ------------------------------------------------------------------

    @property
    def change_event(self) -> asyncio.Event:
        """Set (and replaced) whenever any run changes state.

        Waiters grab the current event, re-read the state they care
        about, and await it; the swap-then-set order guarantees a
        change between the read and the wait cannot be missed.
        """
        return self._change

    def _mark_changed(self) -> None:
        event, self._change = self._change, asyncio.Event()
        event.set()

    # ------------------------------------------------------------------
    # Submission (synchronous: atomic with respect to the event loop)
    # ------------------------------------------------------------------

    def submit(self, request: RunRequest) -> Tuple[RunEntry, bool]:
        """Register one submission; returns ``(entry, created)``.

        ``created`` is True only when this submission put a *new* run
        on the queue; otherwise the entry was answered by the registry,
        the on-disk cache, or an identical in-flight run.

        Raises:
            ServiceShutdownError: The service no longer accepts work.
            QueueFullError: The bounded queue is at capacity.
        """
        if not self._accepting:
            raise ServiceShutdownError(
                "service is shutting down; submissions are closed")
        key = cache_key(request)
        self.metrics.submissions += 1

        entry = self._entries.get(key)
        if entry is not None:
            entry.submissions += 1
            if entry.terminal:
                self.metrics.registry_hits += 1
            else:
                self.metrics.coalesced += 1
            return entry, False

        if self.runner.cache is not None:
            cached = self.runner.cache.get(key)
            if cached is not None:
                entry = RunEntry(key, request, status=DONE)
                entry.result = cached
                entry.done.set()
                self._remember(entry)
                self.metrics.cache_hits += 1
                return entry, False

        if len(self._pending) >= self.max_queue:
            self.metrics.rejected += 1
            raise QueueFullError(
                f"work queue is full ({self.max_queue} runs pending); "
                f"retry later", retry_after_s=self.retry_after_s())

        entry = RunEntry(key, request)
        self._entries[key] = entry
        self._pending.append(entry)
        self.metrics.accepted += 1
        self.metrics.queue_depth = len(self._pending)
        self._wake.set()
        self._mark_changed()
        return entry, True

    def get(self, key: str) -> Optional[RunEntry]:
        """The registry entry for ``key``, or None if never seen/evicted."""
        return self._entries.get(key)

    def retry_after_s(self) -> float:
        """Backpressure hint: estimated seconds until capacity frees up.

        Scales with queue depth and the observed per-run wall time; a
        cold service (nothing measured yet) suggests one second.
        """
        per_run_s = self.metrics.avg_run_wall_s or 0.0
        if per_run_s <= 0.0:
            return 1.0
        depth = len(self._pending) + self.metrics.in_flight
        return min(60.0, max(0.1, depth * per_run_s / max(
            1, self.runner.effective_jobs)))

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` payload."""
        view = self.metrics.snapshot()
        view["queue_depth"] = len(self._pending)
        view["registry_entries"] = len(self._entries)
        view["max_queue"] = self.max_queue
        view["accepting"] = self._accepting
        view["runner"] = {
            "jobs": self.runner.effective_jobs,
            "cache": (str(self.runner.cache.directory)
                      if self.runner.cache is not None else None),
            "batch": self.runner.batch,
            "hits": self.runner.hits,
            "misses": self.runner.misses,
            "batched": self.runner.batched,
            "coalesced": self.runner.coalesced,
        }
        return view

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _remember(self, entry: RunEntry) -> None:
        """Keep a terminal entry for registry hits, within the bound."""
        self._entries[entry.key] = entry
        self._trim_done(entry.key)

    def _trim_done(self, key: str) -> None:
        """Record ``key`` as terminal and evict beyond ``max_done``.

        Evicted results are not lost — the on-disk cache still answers
        them; eviction only bounds the in-memory registry.
        """
        self._done_order.append(key)
        while len(self._done_order) > self.max_done:
            stale_key = self._done_order.popleft()
            stale = self._entries.get(stale_key)
            if stale is not None and stale.terminal:
                del self._entries[stale_key]

    def _fail(self, entry: RunEntry, error: ReproError) -> None:
        entry.status = FAILED
        entry.error_code = type(error).__name__
        entry.error_message = str(error)
        entry.done.set()
        self.metrics.failed += 1
        self._trim_done(entry.key)
        self._mark_changed()

    def _complete(self, entry: RunEntry, result: RunResult) -> None:
        entry.status = DONE
        entry.result = result
        entry.done.set()
        self.metrics.executed += 1
        self._trim_done(entry.key)
        self._mark_changed()

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._draining:
                    break
                self._wake.clear()
                await self._wake.wait()
                continue
            if self.batch_window_s > 0.0 and not self._draining:
                # Linger briefly so a burst of submissions lands in one
                # runner call (and thereby one batched group).
                await asyncio.sleep(self.batch_window_s)
            group: List[RunEntry] = []
            while self._pending and len(group) < self.max_group:
                group.append(self._pending.popleft())
            self.metrics.queue_depth = len(self._pending)
            self.metrics.in_flight = len(group)
            for entry in group:
                entry.status = RUNNING
            self._mark_changed()
            start_s = perf_counter()
            try:
                results = await loop.run_in_executor(
                    None, self._run_batch,
                    [entry.request for entry in group])
            except ReproError as error:
                for entry in group:
                    self._fail(entry, error)
            except Exception as error:  # repro: noqa[RPR301] — a worker
                # crash (pickle failure, pool death, engine bug) must
                # fault this group's runs, not kill the dispatch loop
                # and hang every later submission.
                wrapped = RunExecutionError(
                    f"execution failed: {type(error).__name__}: {error}")
                for entry in group:
                    self._fail(entry, wrapped)
            else:
                wall_s = perf_counter() - start_s
                if group:
                    self.metrics.observe_run_wall_s(wall_s / len(group))
                for entry, result in zip(group, results):
                    self._complete(entry, result)
            finally:
                self.metrics.in_flight = 0


__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "RunEntry",
    "ScenarioService",
    "TERMINAL_STATES",
]
