"""Wire format of the scenario service: JSON specs and error bodies.

A submission body is the JSON mirror of a frozen
:class:`~repro.runner.request.RunRequest`::

    {
      "scheme": "HEB-D",
      "workload": "PR",
      "setup": {"duration_h": 0.5, "seed": 3},
      "faults": {"seed": 7, "events": [
          {"kind": "outage", "start_s": 600.0, "duration_s": 60.0}]}
    }

Only ``scheme`` and ``workload`` are required; everything else defaults
exactly as the dataclasses default, so a spec and the request built from
it always content-address to the same cache key.  Parsing is strict —
unknown fields, wrong types, and unknown scheme/workload names raise
:class:`~repro.errors.SpecError` (or :class:`~repro.errors.FaultSpecError`
for a bad fault schedule) *before* anything is enqueued, and the HTTP
layer turns any :class:`~repro.errors.ReproError` into a structured 400
with the exception class name as the machine-readable code.  A malformed
spec can therefore never surface as a 500/traceback.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Any, Dict, Mapping, Optional, Tuple, Type, Union

from ..config import ControllerConfig
from ..core import POLICY_NAMES
from ..errors import ReproError, SpecError
from ..faults import FaultSchedule, schedule_from_dict
from ..runner import ExperimentSetup, RunRequest
from ..workloads import workload_names
from ..workloads.solar import SolarConfig

#: Top-level spec fields, in the order :func:`request_to_spec` emits them.
SPEC_FIELDS: Tuple[str, ...] = tuple(
    field.name for field in dataclasses.fields(RunRequest))


def _type_name(hint: Any) -> str:
    return getattr(hint, "__name__", str(hint))


def _coerce_scalar(value: Any, hint: Any, where: str) -> Any:
    """Validate one non-dataclass field value against its type hint."""
    origin = typing.get_origin(hint)
    if origin is Union:  # Optional[float] is Union[float, None]
        if value is None:
            return None
        for arm in typing.get_args(hint):
            if arm is not type(None):
                return _coerce_scalar(value, arm, where)
    if hint is float:
        # bool is an int subclass; a spec saying ``"duration_h": true``
        # is a mistake, not a number.
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(f"{where} must be a number, "
                            f"got {type(value).__name__}")
        return float(value)
    if hint is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(f"{where} must be an integer, "
                            f"got {type(value).__name__}")
        return value
    if hint is bool:
        if not isinstance(value, bool):
            raise SpecError(f"{where} must be a boolean, "
                            f"got {type(value).__name__}")
        return value
    if hint is str:
        if not isinstance(value, str):
            raise SpecError(f"{where} must be a string, "
                            f"got {type(value).__name__}")
        return value
    raise SpecError(f"{where}: unsupported field type "
                    f"{_type_name(hint)}")  # pragma: no cover


def _dataclass_from_spec(cls: Type[Any], payload: Any, where: str) -> Any:
    """Build a config dataclass from its JSON spec, strictly."""
    if not isinstance(payload, Mapping):
        raise SpecError(f"{where} must be a JSON object, "
                        f"got {type(payload).__name__}")
    hints = typing.get_type_hints(cls)
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise SpecError(f"{where} has unknown field(s) "
                        f"{', '.join(map(repr, unknown))}; "
                        f"known: {', '.join(sorted(known))}")
    kwargs = {
        name: _coerce_scalar(value, hints[name], f"{where}.{name}")
        for name, value in payload.items()
    }
    return cls(**kwargs)


def _resolve_choice(value: Any, choices: Tuple[str, ...],
                    where: str) -> str:
    """Case-insensitively match ``value`` against ``choices``."""
    if not isinstance(value, str):
        raise SpecError(f"{where} must be a string, "
                        f"got {type(value).__name__}")
    by_lower = {choice.lower(): choice for choice in choices}
    resolved = by_lower.get(value.lower())
    if resolved is None:
        raise SpecError(f"unknown {where} {value!r}; "
                        f"known: {', '.join(choices)}")
    return resolved


def request_from_spec(payload: Any) -> RunRequest:
    """Parse a JSON submission body into a :class:`RunRequest`.

    Raises:
        SpecError: On a non-object payload, unknown/badly-typed fields,
            or an unknown scheme/workload.
        FaultSpecError: On a malformed ``faults`` schedule.
        ConfigurationError: On values the dataclasses themselves reject
            (e.g. a solar config without ``renewable: true``).
    """
    if not isinstance(payload, Mapping):
        raise SpecError(f"run spec must be a JSON object, "
                        f"got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(SPEC_FIELDS))
    if unknown:
        raise SpecError(f"run spec has unknown field(s) "
                        f"{', '.join(map(repr, unknown))}; "
                        f"known: {', '.join(SPEC_FIELDS)}")
    for required in ("scheme", "workload"):
        if required not in payload:
            raise SpecError(f"run spec is missing required field "
                            f"{required!r}")

    scheme = _resolve_choice(payload["scheme"], POLICY_NAMES, "scheme")
    workload = _resolve_choice(payload["workload"],
                               tuple(workload_names()), "workload")

    kwargs: Dict[str, Any] = {"scheme": scheme, "workload": workload}
    if payload.get("setup") is not None:
        kwargs["setup"] = _dataclass_from_spec(
            ExperimentSetup, payload["setup"], "setup")
    if payload.get("controller") is not None:
        kwargs["controller"] = _dataclass_from_spec(
            ControllerConfig, payload["controller"], "controller")
    if payload.get("solar") is not None:
        kwargs["solar"] = _dataclass_from_spec(
            SolarConfig, payload["solar"], "solar")
    if payload.get("faults") is not None:
        faults = payload["faults"]
        if not isinstance(faults, Mapping):
            raise SpecError(f"faults must be a JSON object, "
                            f"got {type(faults).__name__}")
        kwargs["faults"] = schedule_from_dict(dict(faults))

    hints = typing.get_type_hints(RunRequest)
    for name in ("renewable", "start_hour", "policy_sc_fraction",
                 "policy_total_wh"):
        if name in payload:
            kwargs[name] = _coerce_scalar(payload[name], hints[name], name)
    return RunRequest(**kwargs)


def request_to_spec(request: RunRequest) -> Dict[str, Any]:
    """The JSON spec a request round-trips through (inverse of parse).

    ``request_from_spec(request_to_spec(r)) == r`` for every valid
    request, so clients can re-submit exactly what a server reported.
    """
    spec: Dict[str, Any] = {
        "scheme": request.scheme,
        "workload": request.workload,
        "setup": dataclasses.asdict(request.setup),
        "renewable": request.renewable,
        "start_hour": request.start_hour,
    }
    if request.controller is not None:
        spec["controller"] = dataclasses.asdict(request.controller)
    if request.solar is not None:
        spec["solar"] = dataclasses.asdict(request.solar)
    if request.policy_sc_fraction is not None:
        spec["policy_sc_fraction"] = request.policy_sc_fraction
    if request.policy_total_wh is not None:
        spec["policy_total_wh"] = request.policy_total_wh
    if request.faults is not None:
        spec["faults"] = request.faults.to_dict()
    return spec


def error_payload(error: ReproError,
                  key: Optional[str] = None) -> Dict[str, Any]:
    """The structured JSON body every service error response carries."""
    body: Dict[str, Any] = {
        "error": {
            "code": type(error).__name__,
            "message": str(error),
        },
    }
    if key is not None:
        body["key"] = key
    return body


__all__ = [
    "SPEC_FIELDS",
    "error_payload",
    "request_from_spec",
    "request_to_spec",
]
