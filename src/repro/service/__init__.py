"""Scenario-as-a-service: a long-running async API over the run cache.

The experiment runner already gives every simulation a content address
(:func:`~repro.runner.cache_key`), a portable JSON result, and batched
process-pool execution; this package puts an asyncio HTTP server in
front of those so a fleet of clients can share one simulator:

* **Dedup** — concurrent identical submissions coalesce onto one
  in-flight execution; completed results answer from memory or the
  on-disk cache.  A million identical requests cost one simulation.
* **Backpressure** — a bounded work queue; a full queue answers 429
  with ``Retry-After`` instead of accepting work it cannot promise.
* **Batching** — queued compatible requests ride one vectorized
  :class:`~repro.sim.batch.BatchSimulation` tick loop, exactly like
  CLI sweeps.
* **Graceful shutdown** — every accepted run reaches a terminal state.

Named ``service`` (not ``server``) because :mod:`repro.server` models
the *simulated* datacenter servers; this package serves HTTP.

Start one with ``python -m repro serve``; load-test it with
``python -m repro loadtest``.  See ``docs/service.md``.
"""

from .client import ServiceClient
from .metrics import ServiceMetrics
from .protocol import (
    error_payload,
    request_from_spec,
    request_to_spec,
)
from .queue import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    RunEntry,
    ScenarioService,
)
from .server import ScenarioServer, serve

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "RunEntry",
    "ScenarioServer",
    "ScenarioService",
    "ServiceClient",
    "ServiceMetrics",
    "error_payload",
    "request_from_spec",
    "request_to_spec",
    "serve",
]
