"""A minimal asyncio client for the scenario service.

Stdlib-only (``urllib``/``http.client`` are synchronous and would block
the event loop), speaking exactly the subset of HTTP/1.1 the server
emits: JSON bodies with ``Content-Length``, keep-alive connections, and
chunked transfer encoding for the progress stream.  The load-test
harness drives hundreds of these concurrently; each client owns one
connection and reconnects transparently if the server closed it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

from ..errors import ProtocolError

#: (status code, headers, parsed JSON body or None)
Response = Tuple[int, Dict[str, str], Optional[Any]]


class ServiceClient:
    """One keep-alive connection to a scenario server."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    # ------------------------------------------------------------------
    # One HTTP exchange
    # ------------------------------------------------------------------

    async def request(self, method: str, path: str,
                      payload: Optional[Any] = None) -> Response:
        """Send one request; reconnects once if keep-alive lapsed."""
        try:
            return await self._exchange(method, path, payload)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            await self.close()
            await self._connect()
            return await self._exchange(method, path, payload)

    async def _exchange(self, method: str, path: str,
                        payload: Optional[Any]) -> Response:
        if self._writer is None:
            await self._connect()
        assert self._reader is not None and self._writer is not None
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else b"")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        status, headers = await self._read_head()
        parsed = await self._read_body(headers)
        if headers.get("connection") == "close":
            await self.close()
        return status, headers, parsed

    async def _read_head(self) -> Tuple[int, Dict[str, str]]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            # ConnectionError on purpose: it is the signal request()'s
            # reconnect path catches for a lapsed keep-alive connection.
            raise ConnectionError(  # repro: noqa[RPR302]
                "server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ProtocolError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        return status, headers

    async def _read_body(self, headers: Dict[str, str]) -> Optional[Any]:
        assert self._reader is not None
        if headers.get("transfer-encoding") == "chunked":
            raw = b"".join([chunk async for chunk in self._chunks()])
        else:
            length = int(headers.get("content-length", "0"))
            raw = (await self._reader.readexactly(length)
                   if length else b"")
        if not raw:
            return None
        return json.loads(raw.decode("utf-8"))

    async def _chunks(self) -> AsyncIterator[bytes]:
        assert self._reader is not None
        while True:
            size_line = await self._reader.readline()
            size = int(size_line.strip() or b"0", 16)
            if size == 0:
                await self._reader.readline()  # trailing CRLF
                return
            chunk = await self._reader.readexactly(size)
            await self._reader.readexactly(2)  # chunk CRLF
            yield chunk

    # ------------------------------------------------------------------
    # Endpoint helpers
    # ------------------------------------------------------------------

    async def submit(self, spec: Dict[str, Any]) -> Response:
        """``POST /runs`` — returns the raw (status, headers, body)."""
        return await self.request("POST", "/runs", spec)

    async def poll(self, key: str) -> Response:
        """``GET /runs/{key}``."""
        return await self.request("GET", f"/runs/{key}")

    async def stats(self) -> Dict[str, Any]:
        """``GET /stats`` (raises on a non-200)."""
        status, _, body = await self.request("GET", "/stats")
        if status != 200 or not isinstance(body, dict):
            raise ProtocolError(f"GET /stats returned {status}")
        return body

    async def stream(self, key: str) -> List[Dict[str, Any]]:
        """``GET /runs/{key}/stream`` — all progress lines, in order.

        The server closes a streamed connection when the run reaches a
        terminal state, so this returns the full status history ending
        in ``done``/``failed``.
        """
        if self._writer is None:
            await self._connect()
        assert self._reader is not None and self._writer is not None
        head = (
            f"GET /runs/{key}/stream HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        self._writer.write(head)
        await self._writer.drain()
        status, headers = await self._read_head()
        if headers.get("transfer-encoding") != "chunked":
            body = await self._read_body(headers)
            await self.close()
            if status == 200:  # pragma: no cover - server always chunks
                raise ProtocolError("stream response was not chunked")
            raise ProtocolError(
                f"stream for {key!r} returned {status}: {body}")
        text = b"".join([chunk async for chunk in self._chunks()])
        await self.close()  # server sent Connection: close
        return [json.loads(line) for line in
                text.decode("utf-8").splitlines() if line]

    async def submit_and_wait(self, spec: Dict[str, Any],
                              poll_interval_s: float = 0.002,
                              max_retries: int = 200,
                              ) -> Tuple[Dict[str, Any], int]:
        """Submit, honouring 429 backpressure, then poll to a terminal state.

        Returns ``(final snapshot, rejections)`` where ``rejections``
        counts 429 responses absorbed along the way.  Raises
        :class:`ProtocolError` when the submission keeps being rejected
        or answers with an error status.
        """
        rejections = 0
        for _ in range(max_retries):
            status, headers, body = await self.submit(spec)
            if status in (200, 202):
                assert isinstance(body, dict)
                key = body["key"]
                break
            if status == 429:
                rejections += 1
                retry_s = float(headers.get("retry-after", "1"))
                await asyncio.sleep(min(retry_s, poll_interval_s * 10))
                continue
            raise ProtocolError(f"submission failed with {status}: {body}")
        else:
            raise ProtocolError(
                f"submission rejected {rejections} times; giving up")
        while True:
            status, _, body = await self.poll(key)
            if status != 200 or not isinstance(body, dict):
                raise ProtocolError(f"poll of {key!r} returned {status}")
            if body["status"] in ("done", "failed"):
                return body, rejections
            await asyncio.sleep(poll_interval_s)


__all__ = ["Response", "ServiceClient"]
