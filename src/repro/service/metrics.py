"""Service counters: what the scenario service did since it started.

All counters are plain ints mutated only from the server's single event
loop (submission bookkeeping) or from the dispatch coroutine between
``await`` points, so no locking is needed — asyncio interleaves tasks
only at awaits, never mid-statement.  The dispatch *executor* threads
never touch these; they hand results back through futures the loop
consumes.

``hit_rate`` is the headline economics number of the service: the
fraction of submissions that cost zero simulation because the result
already existed (completed registry entry, on-disk cache entry, or an
identical in-flight run they coalesced onto).  A million identical
requests should push it asymptotically to 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class ServiceMetrics:
    """Monotonic counters plus instantaneous gauges.

    Attributes:
        submissions: Every ``POST /runs`` that parsed to a valid request.
        accepted: Submissions that created a new queued run.
        registry_hits: Submissions answered by a completed in-memory run.
        cache_hits: Submissions answered by the on-disk result cache.
        coalesced: Submissions that attached to an identical queued or
            in-flight run (the dedup path: K submitters, one execution).
        rejected: Submissions refused with 429 because the queue was full.
        executed: Runs actually simulated (dispatched and completed).
        failed: Runs that ended in a fault (execution error or aborted
            by a non-draining shutdown).
        streamed: Progress streams opened.
        in_flight: Runs currently executing (gauge).
        queue_depth: Runs accepted but not yet dispatched (gauge).
    """

    submissions: int = 0
    accepted: int = 0
    registry_hits: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    rejected: int = 0
    executed: int = 0
    failed: int = 0
    streamed: int = 0
    in_flight: int = 0
    queue_depth: int = 0
    #: Exponential moving average of per-run execution wall time; feeds
    #: the 429 ``Retry-After`` estimate.
    avg_run_wall_s: float = field(default=0.0, repr=False)

    @property
    def hits(self) -> int:
        """Submissions that cost zero new simulation."""
        return self.registry_hits + self.cache_hits + self.coalesced

    @property
    def hit_rate(self) -> float:
        """``hits / submissions`` (0.0 before any submission)."""
        if self.submissions == 0:
            return 0.0
        return self.hits / self.submissions

    def observe_run_wall_s(self, wall_s: float, alpha: float = 0.3) -> None:
        """Fold one per-run wall-time sample into the moving average."""
        if self.avg_run_wall_s == 0.0:
            self.avg_run_wall_s = wall_s
        else:
            self.avg_run_wall_s += alpha * (wall_s - self.avg_run_wall_s)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible view served by ``GET /stats``."""
        return {
            "submissions": self.submissions,
            "accepted": self.accepted,
            "registry_hits": self.registry_hits,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "executed": self.executed,
            "failed": self.failed,
            "streamed": self.streamed,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "avg_run_wall_s": self.avg_run_wall_s,
        }
